"""Recovery ordering for namespace operations (unlink/truncate/rename).

These cover the extension documented in DESIGN.md: namespace ops are
logged so that crash recovery replays them in order with data writes —
without this, a crash could resurrect a deleted rollback journal or
un-truncate a file.
"""

from repro.kernel import O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY, KernelError
from repro.kernel.errno import ENOENT

from .test_recovery import crash_and_recover, fresh_stack, read_file


def test_unlink_replayed_after_writes():
    """Write then unlink, crash before propagation: the file must NOT
    exist after recovery (the journal-resurrection hazard)."""
    env, kernel, ssd, nvmm, nv = fresh_stack(start_cleanup=False)

    def body():
        fd = yield from nv.open("/journal", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"rollback data", 0)
        yield from nv.close(fd)
        yield from nv.unlink("/journal")

    env.run_process(body())
    env2, kernel2, report = crash_and_recover(env, kernel, ssd, nvmm)
    assert report.namespace_ops_replayed == 1

    def check():
        try:
            yield from kernel2.open("/journal", O_RDONLY)
        except KernelError as exc:
            return exc.errno
        return None

    assert env2.run_process(check()) == ENOENT


def test_unlink_then_recreate_same_path():
    """The SQLite journal pattern: journal written, deleted, recreated
    with new content, crash. Recovery must end with ONLY the new
    content."""
    env, kernel, ssd, nvmm, nv = fresh_stack(start_cleanup=False)

    def body():
        fd = yield from nv.open("/j", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"OLD-TXN-1-GARBAGE", 0)
        yield from nv.close(fd)
        yield from nv.unlink("/j")
        fd = yield from nv.open("/j", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"NEW", 0)

    env.run_process(body())
    env2, kernel2, _report = crash_and_recover(env, kernel, ssd, nvmm)
    data = read_file(env2, kernel2, "/j", 64)
    assert data == b"NEW"
    assert b"GARBAGE" not in data


def test_truncate_replayed_in_order():
    # Cleanup runs (ftruncate drains pending entries first), then stops
    # so the truncate op + the post-truncate write stay in the log.
    env, kernel, ssd, nvmm, nv = fresh_stack()

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"0123456789", 0)
        yield from nv.ftruncate(fd, 4)
        nv.cleanup.stop()
        yield from nv.pwrite(fd, b"AB", 0)

    env.run_process(body())
    assert nv.log.used() >= 2  # the op entry + the new write
    env2, kernel2, report = crash_and_recover(env, kernel, ssd, nvmm)
    assert report.namespace_ops_replayed == 1
    assert read_file(env2, kernel2, "/f", 64) == b"AB23"


def test_open_trunc_replayed():
    env, kernel, ssd, nvmm, nv = fresh_stack()

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"long old content", 0)
        yield from nv.close(fd)
        fd = yield from nv.open("/f", O_WRONLY | O_TRUNC)
        nv.cleanup.stop()
        yield from nv.pwrite(fd, b"new", 0)

    env.run_process(body())
    env2, kernel2, _report = crash_and_recover(env, kernel, ssd, nvmm)
    assert read_file(env2, kernel2, "/f", 64) == b"new"


def test_rename_replayed():
    env, kernel, ssd, nvmm, nv = fresh_stack(start_cleanup=False)

    def body():
        fd = yield from nv.open("/manifest.tmp", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"table list v2", 0)
        yield from nv.close(fd)
        yield from nv.rename("/manifest.tmp", "/MANIFEST")

    env.run_process(body())
    env2, kernel2, report = crash_and_recover(env, kernel, ssd, nvmm)
    assert report.namespace_ops_replayed == 1
    assert read_file(env2, kernel2, "/MANIFEST", 64) == b"table list v2"

    def old_gone():
        try:
            yield from kernel2.open("/manifest.tmp", O_RDONLY)
        except KernelError as exc:
            return exc.errno
        return None

    assert env2.run_process(old_gone()) == ENOENT


def test_deferred_close_keeps_fd_binding_for_recovery():
    """Close with pending entries, crash: the path binding must still be
    in NVMM so the entries are replayed."""
    env, kernel, ssd, nvmm, nv = fresh_stack(start_cleanup=False)

    def body():
        fd = yield from nv.open("/pending", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"survives close+crash", 0)
        yield from nv.close(fd)  # deferred: cleanup is off

    env.run_process(body())
    assert nv.tables.deferred_close
    env2, kernel2, report = crash_and_recover(env, kernel, ssd, nvmm)
    assert report.entries_applied == 1
    assert read_file(env2, kernel2, "/pending", 64) == b"survives close+crash"


def test_retired_fd_not_replayed():
    """After the cleanup thread retires and finalizes a closed fd, its
    path slot is cleared: recovery replays nothing for it."""
    env, kernel, ssd, nvmm, nv = fresh_stack()

    def body():
        fd = yield from nv.open("/done", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"already on disk", 0)
        yield from nv.close(fd)
        yield nv.cleanup.request_drain()
        yield env.timeout(0.05)  # let finalization run

    env.run_process(body())
    assert nv.log.all_paths() == {}
    env2, kernel2, report = crash_and_recover(env, kernel, ssd, nvmm)
    assert report.entries_applied == 0
    assert read_file(env2, kernel2, "/done", 64) == b"already on disk"
