"""Behavioural tests for the NVCache facade (paper §II/§III semantics)."""

import pytest

from repro.kernel import (
    KernelError,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)
from repro.kernel.errno import EBADF

from .conftest import SMALL_CONFIG, make_stack, run


def test_read_own_write_before_propagation(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_RDWR)
        yield from nv.pwrite(fd, b"fresh data", 0)
        data = yield from nv.pread(fd, 10, 0)
        return data

    assert run(env, body()) == b"fresh data"


def test_write_is_durable_without_any_syscall(stack):
    """Synchronous durability: the write lives in the NVMM log before the
    kernel sees anything."""
    env, kernel, ssd, nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"durable!", 0)

    run(env, body())
    assert ssd.stats.writes == 0  # nothing reached the device yet
    # ... but the log already holds a committed durable entry.
    assert nv.log.is_committed(0)
    assert nv.log.read_data(0) == b"durable!"


def test_fsync_is_ignored(stack):
    env, _kernel, ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"x" * 4096, 0)
        start = env.now
        yield from nv.fsync(fd)
        yield from nv.fdatasync(fd)
        yield from nv.sync()
        return env.now - start

    elapsed = run(env, body())
    assert elapsed == 0.0
    assert nv.stats.fsyncs_ignored == 3


def test_cleanup_propagates_to_kernel(stack):
    env, kernel, ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        for i in range(10):
            yield from nv.pwrite(fd, bytes([65 + i]) * 4096, i * 4096)
        yield nv.cleanup.request_drain()
        # Kernel's own view must now match.
        kfd = yield from kernel.open("/f", O_RDONLY)
        data = yield from kernel.pread(kfd, 4096, 5 * 4096)
        return data

    assert run(env, body()) == bytes([70]) * 4096
    assert nv.stats.cleanup_entries == 10
    assert nv.log.used() == 0


def test_cursor_semantics(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_RDWR)
        yield from nv.write(fd, b"abcdef")
        assert nv.ftell(fd) == 6
        yield from nv.lseek(fd, 2, SEEK_SET)
        data = yield from nv.read(fd, 2)
        assert data == b"cd"
        assert nv.ftell(fd) == 4
        pos = yield from nv.lseek(fd, -1, SEEK_END)
        assert pos == 5
        pos = yield from nv.lseek(fd, -2, SEEK_CUR)
        assert pos == 3
        return True

    assert run(env, body()) is True


def test_append_mode(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/log", O_CREAT | O_WRONLY | O_APPEND)
        yield from nv.write(fd, b"one")
        yield from nv.lseek(fd, 0, SEEK_SET)
        yield from nv.write(fd, b"two")  # still appends
        st = yield from nv.fstat(fd)
        return st.st_size

    assert run(env, body()) == 6


def test_size_fresh_while_kernel_stale(stack):
    """Paper §II-C: size/cursor must come from NVCache because the kernel
    view lags while entries are in flight."""
    env, kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY | O_APPEND)
        yield from nv.write(fd, b"z" * 10000)
        nv_stat = yield from nv.fstat(fd)
        kernel_stat = yield from kernel.fstat(fd)
        return nv_stat.st_size, kernel_stat.st_size

    nv_size, kernel_size = run(env, body())
    assert nv_size == 10000
    assert kernel_size < 10000  # kernel hasn't seen the write yet


def test_stat_by_path_fresh(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"q" * 777, 0)
        st = yield from nv.stat("/f")
        return st.st_size

    assert run(env, body()) == 777


def test_two_fds_same_file_share_size_not_cursor(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd1 = yield from nv.open("/f", O_CREAT | O_RDWR)
        fd2 = yield from nv.open("/f", O_RDWR)
        yield from nv.write(fd1, b"hello")
        # fd2 cursor independent, size shared.
        assert nv.ftell(fd2) == 0
        data = yield from nv.read(fd2, 5)
        assert data == b"hello"
        st = yield from nv.fstat(fd2)
        return st.st_size

    assert run(env, body()) == 5


def test_read_only_open_bypasses_read_cache(stack):
    env, kernel, _ssd, _nvmm, nv = stack

    def body():
        # Create content via the kernel directly.
        kfd = yield from kernel.open("/ro", O_CREAT | O_WRONLY)
        yield from kernel.write(kfd, b"kernel content")
        yield from kernel.close(kfd)
        fd = yield from nv.open("/ro", O_RDONLY)
        data = yield from nv.pread(fd, 14, 0)
        return data

    assert run(env, body()) == b"kernel content"
    assert nv.stats.read_only_bypass == 1
    assert nv.stats.read_misses == 0  # read cache untouched
    handle_file = list(nv.tables.files.values())
    assert not handle_file or all(f.radix is None for f in handle_file)


def test_write_to_readonly_fd_fails(stack):
    env, kernel, _ssd, _nvmm, nv = stack

    def body():
        kfd = yield from kernel.open("/ro", O_CREAT | O_WRONLY)
        yield from kernel.close(kfd)
        fd = yield from nv.open("/ro", O_RDONLY)
        yield from nv.pwrite(fd, b"nope", 0)

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == EBADF


def test_read_from_wronly_fd_fails(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"w", 0)
        yield from nv.pread(fd, 1, 0)

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == EBADF


def test_unknown_fd_rejected(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        yield from nv.pread(99, 1, 0)

    with pytest.raises(KernelError):
        run(env, body())


def test_close_is_fast_and_defers_kernel_close(stack):
    """Close never waits for the disk: the kernel close (and the fd's
    NVMM path slot) is deferred until the cleanup thread retires the
    fd's entries."""
    env, kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"flushed-by-close" * 100, 0)
        start = env.now
        yield from nv.close(fd)
        close_cost = env.now - start
        deferred = set(nv.tables.deferred_close)
        # The cleanup thread is expedited by the deferred close.
        yield nv.cleanup.request_drain()
        yield env.timeout(0.01)
        kfd = yield from kernel.open("/f", O_RDONLY)
        data = yield from kernel.pread(kfd, 16, 0)
        return close_cost, deferred, data

    close_cost, deferred, data = run(env, body())
    assert close_cost < 1e-4  # no disk wait in close
    assert deferred  # kernel close really was deferred
    assert data == b"flushed-by-close"
    assert nv.log.used() == 0
    assert nv.tables.deferred_close == set()  # finalized after retirement


def test_close_releases_read_cache_pages(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_RDWR)
        yield from nv.pwrite(fd, b"r" * 4096 * 4, 0)
        yield from nv.pread(fd, 4096 * 4, 0)
        loaded_before = nv.read_cache.loaded_pages()
        yield from nv.close(fd)
        yield nv.cleanup.request_drain()
        yield env.timeout(0.01)  # let the deferred close finalize
        return loaded_before, nv.read_cache.loaded_pages()

    before, after = run(env, body())
    assert before == 4
    assert after == 0


def test_reopen_before_retirement_stays_coherent(stack):
    """Close then immediately reopen: the new handle must share the old
    NvFile (pending entries included) so reads never see stale data."""
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_RDWR)
        yield from nv.pwrite(fd, b"not-yet-propagated", 0)
        yield from nv.close(fd)
        fd2 = yield from nv.open("/f", O_RDWR)
        data = yield from nv.pread(fd2, 18, 0)
        return data

    assert run(env, body()) == b"not-yet-propagated"


def test_large_write_uses_entry_group(stack):
    env, _kernel, _ssd, _nvmm, nv = stack
    entry = SMALL_CONFIG.entry_data_size

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_RDWR)
        payload = bytes(range(256)) * ((3 * entry) // 256)
        yield from nv.pwrite(fd, payload, 123)
        data = yield from nv.pread(fd, len(payload), 123)
        return payload, data

    payload, data = run(env, body())
    assert data == payload
    assert nv.stats.group_writes == 1
    assert nv.stats.entries_created == 3


def test_unaligned_write_straddling_pages(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_RDWR)
        yield from nv.pwrite(fd, b"base" * 2048, 0)  # 8 KiB
        yield from nv.pwrite(fd, b"OVERLAP", 4090)  # straddles pages 0/1
        data = yield from nv.pread(fd, 20, 4085)
        return data

    data = run(env, body())
    assert data == b"aseba" + b"OVERLAP" + b"asebaseb"


def test_hole_reads_as_zero(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_RDWR)
        yield from nv.pwrite(fd, b"end", 9000)
        data = yield from nv.pread(fd, 10, 4500)
        return data

    assert run(env, body()) == b"\x00" * 10


def test_read_past_eof_clipped(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_RDWR)
        yield from nv.pwrite(fd, b"12345", 0)
        data = yield from nv.pread(fd, 100, 3)
        empty = yield from nv.pread(fd, 10, 5)
        return data, empty

    data, empty = run(env, body())
    assert data == b"45"
    assert empty == b""


def test_open_trunc_resets_nvcache_size(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"old" * 1000, 0)
        yield from nv.close(fd)
        fd = yield from nv.open("/f", O_WRONLY | O_TRUNC)
        st = yield from nv.fstat(fd)
        return st.st_size

    assert run(env, body()) == 0


def test_ftruncate_shrinks_and_zeroes(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_RDWR)
        yield from nv.pwrite(fd, b"0123456789", 0)
        yield from nv.ftruncate(fd, 4)
        st = yield from nv.fstat(fd)
        assert st.st_size == 4
        data = yield from nv.pread(fd, 10, 0)
        return data

    assert run(env, body()) == b"0123"


def test_dirty_miss_reconstructs_page(stack):
    """Evict a dirty page, then read it back: the dirty-miss procedure
    must merge the kernel page with pending log entries (paper §II-C)."""
    config = SMALL_CONFIG.__class__(**{**SMALL_CONFIG.__dict__,
                                       "read_cache_pages": 2,
                                       "batch_min": 1000})  # cleanup stalls
    env, kernel, _ssd, _nvmm, nv = make_stack(config)

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_RDWR)
        # Seed page 0 via kernel so there is stale kernel data.
        yield from nv.pwrite(fd, b"A" * 4096, 0)
        yield nv.cleanup.request_drain()
        # Now write without propagation (batch_min high) and evict.
        yield from nv.pwrite(fd, b"B" * 100, 50)
        yield from nv.pread(fd, 1, 4096 * 1)  # load page 1
        yield from nv.pread(fd, 1, 4096 * 2)  # load page 2 -> evicts page 0
        # Page 0 should now be unloaded-dirty.
        descriptor = list(nv.tables.files.values())[0].radix.get(0)
        state_before = descriptor.state
        data = yield from nv.pread(fd, 200, 0)
        return state_before, data

    state_before, data = run(env, body())
    assert state_before == "unloaded-dirty"
    assert data[:50] == b"A" * 50
    assert data[50:150] == b"B" * 100
    assert data[150:200] == b"A" * 50
    assert nv.stats.dirty_misses >= 1
    assert nv.stats.dirty_miss_entries_applied >= 1


def test_write_updates_loaded_page_in_read_cache(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_RDWR)
        yield from nv.pwrite(fd, b"X" * 4096, 0)
        yield from nv.pread(fd, 4096, 0)  # load
        misses_after_load = nv.stats.read_misses
        yield from nv.pwrite(fd, b"Y" * 10, 5)  # must update content in place
        data = yield from nv.pread(fd, 20, 0)
        return misses_after_load, data

    misses_after_load, data = run(env, body())
    assert data == b"X" * 5 + b"Y" * 10 + b"X" * 5
    assert nv.stats.read_misses == misses_after_load  # second read was a hit


def test_log_saturation_blocks_writer(stack):
    """Writes stall once the log fills faster than the SSD drains."""
    config = SMALL_CONFIG.__class__(**{**SMALL_CONFIG.__dict__,
                                       "log_entries": 16,
                                       "batch_min": 1, "batch_max": 4})
    env, _kernel, _ssd, _nvmm, nv = make_stack(config)

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        for i in range(200):
            yield from nv.pwrite(fd, b"s" * 4096, (i % 64) * 4096)
        return True

    assert run(env, body()) is True
    assert nv.stats.log_full_waits > 0
    nv.check_invariants()


def test_invariants_hold_after_mixed_workload(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_RDWR)
        for i in range(50):
            yield from nv.pwrite(fd, bytes([i]) * 512, (i * 997) % 20000)
            if i % 5 == 0:
                yield from nv.pread(fd, 1024, (i * 313) % 20000)
        nv.check_invariants()
        yield nv.cleanup.request_drain()
        nv.check_invariants()
        return True

    assert run(env, body()) is True


def test_shutdown_stops_cleanup(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"bye", 0)
        yield from nv.shutdown()
        return nv.cleanup.running

    assert run(env, body()) is False
    assert nv.log.used() == 0


def test_truncate_then_extend_no_stale_resurrection(stack):
    """Regression: a pending pre-truncate write must not resurrect stale
    bytes into the hole after a later extending write."""
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_RDWR)
        yield from nv.pwrite(fd, b"A" * 8192, 0)
        yield from nv.ftruncate(fd, 100)
        yield from nv.pwrite(fd, b"B" * 10, 8000)
        middle = yield from nv.pread(fd, 200, 4000)
        tail = yield from nv.pread(fd, 10, 8000)
        head = yield from nv.pread(fd, 100, 0)
        return middle, tail, head

    middle, tail, head = run(env, body())
    assert middle == b"\x00" * 200
    assert tail == b"B" * 10
    assert head == b"A" * 100


def test_readonly_fd_sees_writes_after_radix_created(stack):
    """A file opened read-only (bypass) then opened for writing: reads
    through the ORIGINAL fd must see the new writes (the shared NvFile
    gains a radix tree and both fds use it)."""
    env, kernel, _ssd, _nvmm, nv = stack

    def body():
        kfd = yield from kernel.open("/ro", O_CREAT | O_WRONLY)
        yield from kernel.write(kfd, b"seed-value")
        yield from kernel.close(kfd)
        ro_fd = yield from nv.open("/ro", O_RDONLY)
        first = yield from nv.pread(ro_fd, 10, 0)
        assert first == b"seed-value"
        rw_fd = yield from nv.open("/ro", O_RDWR)
        yield from nv.pwrite(rw_fd, b"UPDATED!!!", 0)
        second = yield from nv.pread(ro_fd, 10, 0)
        return second

    assert run(env, body()) == b"UPDATED!!!"


def test_write_spanning_many_pages_consistent(stack):
    env, _kernel, _ssd, _nvmm, nv = stack

    def body():
        fd = yield from nv.open("/big", O_CREAT | O_RDWR)
        payload = bytes(range(256)) * 160  # 40 KiB = 10 pages
        yield from nv.pwrite(fd, payload, 2000)  # unaligned start
        data = yield from nv.pread(fd, len(payload), 2000)
        yield nv.cleanup.request_drain()
        after_drain = yield from nv.pread(fd, len(payload), 2000)
        return payload, data, after_drain

    payload, data, after_drain = run(env, body())
    assert data == payload
    assert after_drain == payload
