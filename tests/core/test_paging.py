"""Unit tests for the paging-mode NVMM cache (repro.core.paging).

The crash matrix lives in the explorer sweep (``fio-paging`` workload)
and the cross-mode property tests; these tests pin the direct facade
behaviour — hit accounting, in-place supersede, fill reads, writeback,
invalidation — on a hand-built small stack.
"""

import pytest

from repro.block import SsdDevice
from repro.core import NvcacheConfig, PagingCache, PagingStore, recover
from repro.fs import Ext4
from repro.kernel import Kernel
from repro.kernel.fd_table import O_CREAT, O_RDONLY, O_RDWR, O_WRONLY
from repro.nvmm import NvmmDevice
from repro.sim import Environment
from repro.units import MIB

PAGING_CONFIG = NvcacheConfig(
    cache_mode="paging", log_entries=64, entry_data_size=512,
    read_cache_pages=8, paging_slots=12, paging_batch_pages=4,
    paging_idle_flush=0.01, batch_min=4, batch_max=16, fd_max=16,
    path_max=64, cleanup_idle_flush=0.01, page_size=4096)

PAGE = PAGING_CONFIG.page_size


def make_paging_stack(config=PAGING_CONFIG, start_cleanup=True):
    env = Environment()
    ssd = SsdDevice(env, size=32 * MIB)
    kernel = Kernel(env)
    kernel.mount("/", Ext4(env, ssd))
    nvmm = NvmmDevice(env, size=PagingStore.required_size(config))
    cache = PagingCache(env, kernel, nvmm, config,
                        start_cleanup=start_cleanup)
    return env, kernel, nvmm, cache


def test_write_read_roundtrip_is_a_page_hit():
    env, _kernel, _nvmm, cache = make_paging_stack()

    def body():
        fd = yield from cache.open("/a", O_CREAT | O_RDWR)
        yield from cache.pwrite(fd, b"x" * 100, 0)
        data = yield from cache.pread(fd, 100, 0)
        assert data == b"x" * 100
        yield from cache.close(fd)

    env.run_process(body())
    assert cache.stats.page_hits == 1
    assert cache.stats.page_misses == 0
    cache.check_invariants()


def test_overwrite_supersedes_in_place():
    env, _kernel, _nvmm, cache = make_paging_stack(start_cleanup=False)

    def body():
        fd = yield from cache.open("/a", O_CREAT | O_RDWR)
        for _ in range(5):
            yield from cache.pwrite(fd, b"y" * PAGE, 0)
        yield from cache.close(fd)

    env.run_process(body())
    # Five versions of one page: four superseded the resident copy;
    # exactly one slot holds the page.
    assert cache.stats.overwrite_hits == 4
    resident = sum(1 for slot in cache.slots if slot.state != 0)
    assert resident == 1
    cache.check_invariants()


def test_partial_write_fills_from_backend():
    """A sub-page write into a non-resident page of an existing file
    must seed the rest of the page from the SSD copy."""
    env, kernel, _nvmm, cache = make_paging_stack()

    def body():
        fd = yield from cache.open("/a", O_CREAT | O_RDWR)
        yield from cache.pwrite(fd, b"A" * PAGE, 0)
        yield from cache.close(fd)
        yield cache.cleanup.request_drain()

    env.run_process(body())
    # Drop the resident copy by building a fresh cache over the same
    # kernel: simplest is to evict via flock-style invalidation — here
    # we just clear the map through a truncate-free reopen after drain,
    # so exercise the fill path with a *write-only* fd instead (the
    # transient O_RDONLY fill-read branch).
    env2, kernel2, _nvmm2, cache2 = make_paging_stack()

    def seed():
        fd = yield from kernel2.open("/b", O_CREAT | O_WRONLY)
        yield from kernel2.pwrite(fd, b"B" * PAGE, 0)
        yield from kernel2.close(fd)
        yield from kernel2.sync()

    env2.run_process(seed())

    def partial():
        fd = yield from cache2.open("/b", O_WRONLY)
        yield from cache2.pwrite(fd, b"C" * 16, 100)
        yield from cache2.close(fd)
        yield cache2.cleanup.request_drain()

    env2.run_process(partial())
    assert cache2.stats.fill_reads == 1

    def readback():
        fd = yield from kernel2.open("/b", O_RDONLY)
        data = yield from kernel2.pread(fd, PAGE, 0)
        yield from kernel2.close(fd)
        return data

    data = env2.run_process(readback())
    assert data == b"B" * 100 + b"C" * 16 + b"B" * (PAGE - 116)


def test_fsync_is_free_and_still_durable():
    env, kernel, nvmm, cache = make_paging_stack(start_cleanup=False)

    def body():
        fd = yield from cache.open("/a", O_CREAT | O_RDWR)
        yield from cache.pwrite(fd, b"d" * 200, 0)
        yield from cache.fsync(fd)
        yield from cache.fdatasync(fd)
        yield from cache.close(fd)

    env.run_process(body())
    assert cache.stats.fsyncs_ignored == 2
    # Nothing reached the SSD (no writeback ran), yet a worst-case
    # power cut must keep the acked write: recovery replays it.
    image = nvmm.crash_image(keep_lines=frozenset())
    kernel.crash()
    env2 = Environment()
    nvmm2 = NvmmDevice.from_image(env2, image, name=nvmm.name)
    ssd = SsdDevice(env2, size=32 * MIB)
    kernel2 = Kernel(env2)
    kernel2.mount("/", Ext4(env2, ssd))
    report = env2.run_process(recover(env2, kernel2, nvmm2, PAGING_CONFIG))
    assert report.entries_applied == 1

    def readback():
        fd = yield from kernel2.open("/a", O_RDONLY)
        data = yield from kernel2.pread(fd, 200, 0)
        yield from kernel2.close(fd)
        return data

    assert env2.run_process(readback()) == b"d" * 200


def test_drain_writes_back_and_cleans():
    env, kernel, _nvmm, cache = make_paging_stack()

    def body():
        fd = yield from cache.open("/a", O_CREAT | O_RDWR)
        for page in range(6):
            yield from cache.pwrite(fd, bytes([page]) * PAGE, page * PAGE)
        yield from cache.close(fd)
        yield cache.cleanup.request_drain()

    env.run_process(body())
    assert cache.stats.writeback_pages == 6
    assert cache.stats.writeback_syncs >= 1
    assert cache._dirty_count == 0

    def readback():
        fd = yield from kernel.open("/a", O_RDONLY)
        data = yield from kernel.pread(fd, 6 * PAGE, 0)
        yield from kernel.close(fd)
        return data

    data = env.run_process(readback())
    assert data == b"".join(bytes([page]) * PAGE for page in range(6))
    cache.check_invariants()


def test_slot_pressure_evicts_or_waits():
    """More distinct dirty pages than slots: the writer must block on
    writeback (full_waits) and/or recycle cleaned slots (evictions) —
    either way every byte survives to the SSD."""
    env, kernel, _nvmm, cache = make_paging_stack()
    pages = PAGING_CONFIG.paging_slots * 3

    def body():
        fd = yield from cache.open("/big", O_CREAT | O_RDWR)
        for page in range(pages):
            yield from cache.pwrite(fd, bytes([page % 251]) * PAGE,
                                    page * PAGE)
        yield from cache.close(fd)
        yield cache.cleanup.request_drain()

    env.run_process(body())
    assert cache.stats.full_waits + cache.stats.evictions > 0
    assert cache.stats.writeback_pages >= pages

    def readback():
        fd = yield from kernel.open("/big", O_RDONLY)
        data = yield from kernel.pread(fd, pages * PAGE, 0)
        yield from kernel.close(fd)
        return data

    data = env.run_process(readback())
    expected = b"".join(bytes([page % 251]) * PAGE for page in range(pages))
    assert data == expected
    cache.check_invariants()


def test_ftruncate_invalidates_resident_pages():
    # Cleanup must run: invalidation drains dirty pages through the
    # writeback thread before clearing the page metadata.
    env, _kernel, _nvmm, cache = make_paging_stack()

    def body():
        fd = yield from cache.open("/a", O_CREAT | O_RDWR)
        yield from cache.pwrite(fd, b"z" * (2 * PAGE), 0)
        yield from cache.ftruncate(fd, 100)
        st = yield from cache.fstat(fd)
        assert st.st_size == 100
        yield from cache.close(fd)

    env.run_process(body())
    assert cache.stats.invalidations >= 1
    resident = sum(1 for slot in cache.slots if slot.state != 0)
    assert resident == 0
    cache.check_invariants()


def test_namespace_ops_are_durable_at_syscall_time():
    env, kernel, _nvmm, cache = make_paging_stack()

    def body():
        fd = yield from cache.open("/old", O_CREAT | O_RDWR)
        yield from cache.pwrite(fd, b"n" * 64, 0)
        yield from cache.close(fd)
        yield from cache.rename("/old", "/new")
        fd = yield from cache.open("/new", O_RDWR)
        data = yield from cache.pread(fd, 64, 0)
        assert data == b"n" * 64
        yield from cache.close(fd)
        yield from cache.unlink("/new")
        yield cache.cleanup.request_drain()

    env.run_process(body())

    def absent():
        try:
            yield from kernel.stat("/new")
        except OSError:
            return True
        return False

    assert env.run_process(absent())
    cache.check_invariants()


def test_read_only_open_bypasses_staging():
    env, kernel, _nvmm, cache = make_paging_stack()

    def seed():
        fd = yield from kernel.open("/r", O_CREAT | O_WRONLY)
        yield from kernel.pwrite(fd, b"R" * 300, 0)
        yield from kernel.close(fd)
        yield from kernel.sync()

    env.run_process(seed())

    def body():
        fd = yield from cache.open("/r", O_RDONLY)
        data = yield from cache.pread(fd, 300, 0)
        yield from cache.close(fd)
        return data

    assert env.run_process(body()) == b"R" * 300
    assert cache.stats.page_misses >= 1

    def write_denied():
        fd = yield from cache.open("/r", O_RDONLY)
        with pytest.raises(OSError):
            yield from cache.pwrite(fd, b"no", 0)
        yield from cache.close(fd)

    env.run_process(write_denied())
