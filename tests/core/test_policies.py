"""Unit tests for the pluggable eviction/promotion policies."""

import pytest

from repro.core import (POLICY_NAMES, AlruPolicy, LruPolicy, NhitPolicy,
                        make_policy)


def test_lru_victims_in_recency_order():
    policy = LruPolicy()
    for key in ("a", "b", "c"):
        policy.record_insert(key)
    policy.record_access("a")          # a is now most recent
    assert policy.victims(["a", "b", "c"]) == ["b", "c", "a"]


def test_untracked_keys_sort_before_any_tracked_key():
    policy = LruPolicy()
    policy.record_insert("seen")
    assert policy.victims(["seen", "ghost"]) == ["ghost", "seen"]


def test_record_evict_forgets_the_key():
    policy = LruPolicy()
    policy.record_insert("a")
    policy.record_insert("b")
    policy.record_evict("a")           # "a" becomes untracked again
    assert policy.victims(["a", "b"]) == ["a", "b"]


def test_alru_prefers_stale_entries_over_lru_order():
    policy = AlruPolicy(staleness=3)
    policy.record_insert("old")        # clock 1
    policy.record_insert("mid")        # clock 2
    for _ in range(4):                 # age the clock past staleness
        policy.record_access("hot")
    # "old" and "mid" are both stale; "hot" is fresh and gets a second
    # chance even though plain LRU would already allow evicting it last.
    assert policy.victims(["hot", "old", "mid"]) == ["old", "mid", "hot"]


def test_alru_degrades_to_lru_when_nothing_is_stale():
    policy = AlruPolicy(staleness=100)
    policy.record_insert("a")
    policy.record_insert("b")
    assert policy.victims(["b", "a"]) == ["a", "b"]


def test_nhit_admits_on_the_threshold_miss():
    policy = NhitPolicy(threshold=3)
    assert not policy.admit("k")       # miss 1
    assert not policy.admit("k")       # miss 2
    assert policy.admit("k")           # miss 3: admitted
    # Admission resets the touch count: a later one-shot miss is gated
    # again (the key was promoted, then evicted, then seen once).
    assert not policy.admit("k")


def test_nhit_window_bounds_the_touch_map():
    policy = NhitPolicy(threshold=2, window=2)
    policy.admit("a")
    policy.admit("b")
    policy.admit("c")                  # evicts "a"'s touch record
    assert not policy.admit("a")       # back to one touch, still gated
    assert policy.admit("c")           # "c" survived the window


def test_make_policy_catalog():
    assert make_policy("") is None
    assert make_policy("clock") is None
    assert isinstance(make_policy("lru"), LruPolicy)
    assert isinstance(make_policy("alru"), AlruPolicy)
    assert isinstance(make_policy("nhit"), NhitPolicy)
    assert make_policy("nhit", nhit_threshold=5).threshold == 5
    assert make_policy("alru", alru_staleness=7).staleness == 7
    with pytest.raises(ValueError):
        make_policy("fifo")


def test_policy_names_match_the_factory():
    for name in POLICY_NAMES:
        assert make_policy(name).name == name


def test_constructor_validation():
    with pytest.raises(ValueError):
        AlruPolicy(staleness=0)
    with pytest.raises(ValueError):
        NhitPolicy(threshold=0)
    with pytest.raises(ValueError):
        NhitPolicy(window=0)
