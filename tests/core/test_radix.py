"""Unit and property tests for the radix tree."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.core import RadixTree


def test_empty_tree():
    tree = RadixTree()
    assert tree.get(0) is None
    assert tree.get(10**9) is None
    assert len(tree) == 0


def test_insert_and_get():
    tree = RadixTree()
    value = tree.get_or_create(5, lambda: "five")
    assert value == "five"
    assert tree.get(5) == "five"
    assert len(tree) == 1


def test_get_or_create_idempotent():
    tree = RadixTree()
    first = tree.get_or_create(7, lambda: object())
    second = tree.get_or_create(7, lambda: object())
    assert first is second
    assert len(tree) == 1


def test_grows_for_large_keys():
    tree = RadixTree()
    tree.get_or_create(3, lambda: "small")
    tree.get_or_create(10**7, lambda: "large")
    assert tree.get(3) == "small"
    assert tree.get(10**7) == "large"


def test_negative_key_rejected():
    tree = RadixTree()
    with pytest.raises(ValueError):
        tree.get(-1)
    with pytest.raises(ValueError):
        tree.get_or_create(-5, lambda: None)


def test_items_sorted():
    tree = RadixTree()
    keys = [100, 3, 50000, 7, 0, 64, 65]
    for key in keys:
        tree.get_or_create(key, lambda k=key: f"v{k}")
    assert [k for k, _v in tree.items()] == sorted(keys)
    assert dict(tree.items())[50000] == "v50000"


@given(st.sets(st.integers(min_value=0, max_value=2**40), max_size=200))
def test_property_roundtrip(keys):
    tree = RadixTree()
    for key in keys:
        tree.get_or_create(key, lambda k=key: k * 2)
    for key in keys:
        assert tree.get(key) == key * 2
    assert len(tree) == len(keys)
    assert [k for k, _ in tree.items()] == sorted(keys)


@given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=100))
def test_property_missing_keys_absent(keys):
    tree = RadixTree()
    present = set(keys[::2])
    for key in present:
        tree.get_or_create(key, lambda: True)
    for key in keys:
        if key not in present:
            assert tree.get(key) is None
