"""Unit tests for the user-space read cache and its CLOCK eviction."""

import pytest

from repro.core import NvcacheStats, PageDescriptor, ReadCache
from repro.sim import Environment


def make_cache(capacity=4, page_size=64):
    env = Environment()
    stats = NvcacheStats()
    return env, stats, ReadCache(env, capacity, page_size, stats)


def run(env, gen):
    return env.run_process(gen)


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        ReadCache(env, 0, 64)


def test_allocate_up_to_capacity_without_eviction():
    env, stats, cache = make_cache(capacity=3)

    def body():
        contents = []
        for i in range(3):
            content = yield from cache.allocate_content()
            cache.attach(PageDescriptor(env, i), content)
            contents.append(content)
        return contents

    contents = run(env, body())
    assert len(contents) == 3
    assert stats.evictions == 0
    assert cache.loaded_pages() == 3


def test_eviction_recycles_oldest_unaccessed():
    env, stats, cache = make_cache(capacity=2)

    def body():
        d0, d1 = PageDescriptor(env, 0), PageDescriptor(env, 1)
        c0 = yield from cache.allocate_content()
        cache.attach(d0, c0)
        c1 = yield from cache.allocate_content()
        cache.attach(d1, c1)
        # Neither accessed: d0 is the oldest and gets recycled.
        c2 = yield from cache.allocate_content()
        return d0, d1, c0, c2

    d0, d1, c0, c2 = run(env, body())
    assert c2 is c0
    assert d0.content is None
    assert d0.state == "unloaded-clean"
    assert d1.content is not None
    assert stats.evictions == 1


def test_second_chance_for_accessed_page():
    env, stats, cache = make_cache(capacity=2)

    def body():
        d0, d1 = PageDescriptor(env, 0), PageDescriptor(env, 1)
        c0 = yield from cache.allocate_content()
        cache.attach(d0, c0)
        c1 = yield from cache.allocate_content()
        cache.attach(d1, c1)
        d0.accessed = True  # a read touched page 0
        c2 = yield from cache.allocate_content()
        return d0, d1, c1, c2

    d0, d1, c1, c2 = run(env, body())
    assert c2 is c1  # page 1 evicted instead
    assert d0.content is not None
    assert d0.accessed is False  # second chance consumed
    assert stats.eviction_second_chances == 1


def test_locked_page_skipped_by_eviction():
    env, _stats, cache = make_cache(capacity=2)

    def body():
        d0, d1 = PageDescriptor(env, 0), PageDescriptor(env, 1)
        c0 = yield from cache.allocate_content()
        cache.attach(d0, c0)
        c1 = yield from cache.allocate_content()
        cache.attach(d1, c1)
        yield d0.atomic_lock.acquire()  # someone is using page 0
        c2 = yield from cache.allocate_content()
        d0.atomic_lock.release()
        return d0, c1, c2

    d0, c1, c2 = run(env, body())
    assert c2 is c1
    assert d0.content is not None


def test_dirty_page_becomes_unloaded_dirty_on_eviction():
    """The paper's key trick: evicting a dirty page costs NO write syscall;
    the page just transitions to unloaded-dirty (Fig 2)."""
    env, _stats, cache = make_cache(capacity=1)

    def body():
        d0 = PageDescriptor(env, 0)
        d0.dirty_counter = 3  # pending log entries touch this page
        c0 = yield from cache.allocate_content()
        cache.attach(d0, c0)
        c1 = yield from cache.allocate_content()  # evicts page 0
        return d0, c0, c1

    d0, c0, c1 = run(env, body())
    assert c1 is c0
    assert d0.state == "unloaded-dirty"
    assert d0.dirty_counter == 3  # untouched by eviction


def test_release_returns_budget():
    env, _stats, cache = make_cache(capacity=1)

    def body():
        d0 = PageDescriptor(env, 0)
        c0 = yield from cache.allocate_content()
        cache.attach(d0, c0)
        cache.release(c0)
        assert d0.content is None
        # Budget freed: allocation succeeds without eviction machinery.
        c1 = yield from cache.allocate_content()
        return c1

    assert run(env, body()) is not None


def test_page_state_names():
    env = Environment()
    descriptor = PageDescriptor(env, 9)
    assert descriptor.state == "unloaded-clean"
    descriptor.dirty_counter = 1
    assert descriptor.state == "unloaded-dirty"
    descriptor.content = object()
    assert descriptor.state == "loaded"
