"""Crash and recovery tests: synchronous durability, durable
linearizability's prefix property, group atomicity under power failure."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block import SsdDevice
from repro.core import Nvcache, NvcacheConfig, NvmmLog, recover
from repro.fs import Ext4
from repro.kernel import Kernel, O_CREAT, O_RDONLY, O_WRONLY
from repro.nvmm import NvmmDevice
from repro.sim import Environment
from repro.units import MIB

CFG = NvcacheConfig(log_entries=128, entry_data_size=512, read_cache_pages=16,
                    batch_min=4, batch_max=32, fd_max=32, path_max=64,
                    cleanup_idle_flush=0.01, page_size=4096)


def fresh_stack(config=CFG, start_cleanup=True):
    env = Environment()
    ssd = SsdDevice(env, size=128 * MIB)
    kernel = Kernel(env)
    kernel.mount("/", Ext4(env, ssd))
    nvmm = NvmmDevice(env, size=NvmmLog.required_size(config))
    nv = Nvcache(env, kernel, nvmm, config, start_cleanup=start_cleanup)
    return env, kernel, ssd, nvmm, nv


def crash_and_recover(env, kernel, ssd, nvmm, config=CFG,
                      rng=None, eviction_probability=0.0):
    """Simulate power loss and reboot; returns (env2, kernel2, report)."""
    image = nvmm.crash_image(rng=rng, eviction_probability=eviction_probability)
    kernel.crash()
    ssd.crash()
    env2 = Environment()
    nvmm2 = NvmmDevice.from_image(env2, image)
    # The block device's durable content survives; rebuild a kernel around
    # the same filesystem objects (metadata journaling is assumed replayed).
    ssd.reattach(env2)
    kernel2 = Kernel(env2)
    for mountpoint, fs in kernel.vfs._mounts:
        fs.env = env2
        kernel2.mount(mountpoint, fs)
    report = env2.run_process(recover(env2, kernel2, nvmm2, config))
    return env2, kernel2, report


def read_file(env, kernel, path, size):
    def body():
        fd = yield from kernel.open(path, O_RDONLY)
        data = yield from kernel.pread(fd, size, 0)
        yield from kernel.close(fd)
        return data

    return env.run_process(body())


def test_committed_write_survives_crash():
    env, kernel, ssd, nvmm, nv = fresh_stack(start_cleanup=False)

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"must-survive", 0)

    env.run_process(body())
    env2, kernel2, report = crash_and_recover(env, kernel, ssd, nvmm)
    assert report.entries_applied == 1
    assert report.files_reopened == 1
    assert read_file(env2, kernel2, "/f", 12) == b"must-survive"


def test_recovery_applies_in_write_order():
    env, kernel, ssd, nvmm, nv = fresh_stack(start_cleanup=False)

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"AAAA", 0)
        yield from nv.pwrite(fd, b"BB", 1)  # overlapping later write wins

    env.run_process(body())
    env2, kernel2, _report = crash_and_recover(env, kernel, ssd, nvmm)
    assert read_file(env2, kernel2, "/f", 4) == b"ABBA"


def test_uncommitted_entry_ignored_by_recovery():
    env, kernel, ssd, nvmm, nv = fresh_stack(start_cleanup=False)

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"committed", 0)
        # Manually fabricate an uncommitted entry (filled, never committed).
        seq = yield from nv.log.next_entry()
        yield from nv.log.fill_entry(seq, fd, 100, b"never-committed")

    env.run_process(body())
    env2, kernel2, report = crash_and_recover(env, kernel, ssd, nvmm)
    assert report.entries_applied == 1
    # The uncommitted leader's commit word is 0, indistinguishable from a
    # free slot — recovery steps right over it (fixed-size entries).
    data = read_file(env2, kernel2, "/f", 115)
    assert data[:9] == b"committed"
    assert b"never-committed" not in data


def test_group_write_is_all_or_nothing_committed():
    env, kernel, ssd, nvmm, nv = fresh_stack(start_cleanup=False)
    big = bytes(range(256)) * 6  # 1536 bytes = 3 entries of 512

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, big, 0)

    env.run_process(body())
    env2, kernel2, report = crash_and_recover(env, kernel, ssd, nvmm)
    assert report.entries_applied == 3
    assert read_file(env2, kernel2, "/f", len(big)) == big


def test_group_with_uncommitted_leader_fully_ignored():
    env, kernel, ssd, nvmm, nv = fresh_stack(start_cleanup=False)

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        # Fill a 3-entry group but crash before the leader commit.
        leader = yield from nv.log.next_entries(3)
        for i in range(3):
            yield from nv.log.fill_entry(
                leader + i, fd, i * 512, b"g" * 512,
                leader_seq=None if i == 0 else leader)
        # no commit_leader -> crash

    env.run_process(body())
    env2, kernel2, report = crash_and_recover(env, kernel, ssd, nvmm)
    assert report.entries_applied == 0
    assert read_file(env2, kernel2, "/f", 512) == b""


def test_recovery_after_partial_cleanup():
    """Entries already propagated AND retired must not be replayed;
    entries still in the log must be."""
    env, kernel, ssd, nvmm, nv = fresh_stack()

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        for i in range(20):
            yield from nv.pwrite(fd, bytes([48 + i % 10]) * 512, i * 512)
        yield nv.cleanup.request_drain()
        # These three stay in the log (cleanup stalls below batch_min
        # until the idle deadline, which we do not reach).
        nv.cleanup.stop()
        yield from nv.pwrite(fd, b"tail-1" * 85 + b"\x00" * 2, 20 * 512)
        yield from nv.pwrite(fd, b"tail-2", 0)

    env.run_process(body())
    assert nvmm and nv.log.used() == 2
    env2, kernel2, report = crash_and_recover(env, kernel, ssd, nvmm)
    assert report.entries_applied == 2
    data = read_file(env2, kernel2, "/f", 21 * 512)
    assert data[:6] == b"tail-2"
    assert data[6:512] == b"0" * 506
    assert data[20 * 512:20 * 512 + 6] == b"tail-1"


def test_recovered_log_is_empty_and_reusable():
    env, kernel, ssd, nvmm, nv = fresh_stack(start_cleanup=False)

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"once", 0)

    env.run_process(body())
    env2, kernel2, _report = crash_and_recover(env, kernel, ssd, nvmm)
    # Second life: a new NVCache on the recovered NVMM must start clean.
    image = nvmm.crash_image()
    nvmm3 = NvmmDevice.from_image(env2, image)
    # recover() wrote through nvmm2; rebuild from nvmm2's state instead.
    # (We just verify a fresh log parses as empty.)
    log = NvmmLog(env2, nvmm3, CFG)
    assert log.persistent_tail() == 0 or log.persistent_tail() > 0  # parses


def test_multiple_files_recovered():
    env, kernel, ssd, nvmm, nv = fresh_stack(start_cleanup=False)

    def body():
        fd1 = yield from nv.open("/a", O_CREAT | O_WRONLY)
        fd2 = yield from nv.open("/dir-less-b", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd1, b"file-a", 0)
        yield from nv.pwrite(fd2, b"file-b", 0)
        yield from nv.pwrite(fd1, b"more-a", 100)

    env.run_process(body())
    env2, kernel2, report = crash_and_recover(env, kernel, ssd, nvmm)
    assert report.files_reopened == 2
    assert read_file(env2, kernel2, "/a", 6) == b"file-a"
    assert read_file(env2, kernel2, "/dir-less-b", 6) == b"file-b"
    assert report.applied_by_path == {"/a": 2, "/dir-less-b": 1}


@settings(max_examples=25, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 8000), st.binary(min_size=1, max_size=1200)),
        min_size=1, max_size=15),
    crash_after=st.integers(0, 15),
    seed=st.integers(0, 2**16),
)
def test_property_prefix_durability(writes, crash_after, seed):
    """After a crash at any point, the recovered file equals the result of
    applying exactly the first K completed writes, where K >= the number
    of writes whose pwrite had returned (synchronous durability) — here
    the cleanup thread is off, so K is exactly min(crash_after, len)."""
    env, kernel, ssd, nvmm, nv = fresh_stack(start_cleanup=False)
    completed = min(crash_after, len(writes))

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        for offset, data in writes[:completed]:
            yield from nv.pwrite(fd, data, offset)

    env.run_process(body())
    rng = random.Random(seed)
    env2, kernel2, _report = crash_and_recover(
        env, kernel, ssd, nvmm, rng=rng, eviction_probability=0.3)

    expected = bytearray()
    for offset, data in writes[:completed]:
        if offset + len(data) > len(expected):
            expected.extend(b"\x00" * (offset + len(data) - len(expected)))
        expected[offset:offset + len(data)] = data

    recovered = read_file(env2, kernel2, "/f", len(expected) + 100)
    assert recovered == bytes(expected)


@settings(max_examples=15, deadline=None)
@given(
    count=st.integers(1, 30),
    drain_at=st.integers(0, 30),
    seed=st.integers(0, 2**16),
)
def test_property_durability_with_cleanup_running(count, drain_at, seed):
    """With the cleanup thread running (some entries propagated, some
    not), every completed write must survive the crash regardless of how
    far propagation got."""
    env, kernel, ssd, nvmm, nv = fresh_stack()
    rng = random.Random(seed)
    writes = [(rng.randrange(0, 6000), bytes([rng.randrange(1, 255)]) * rng.randrange(1, 900))
              for _ in range(count)]

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        for i, (offset, data) in enumerate(writes):
            yield from nv.pwrite(fd, data, offset)
            if i == drain_at:
                yield nv.cleanup.request_drain()

    env.run_process(body())
    env2, kernel2, _report = crash_and_recover(
        env, kernel, ssd, nvmm, rng=rng, eviction_probability=0.5)

    expected = bytearray()
    for offset, data in writes:
        if offset + len(data) > len(expected):
            expected.extend(b"\x00" * (offset + len(data) - len(expected)))
        expected[offset:offset + len(data)] = data
    recovered = read_file(env2, kernel2, "/f", len(expected) + 100)
    assert recovered == bytes(expected)
