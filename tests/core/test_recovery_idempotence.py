"""Recovery robustness: crashing *during* recovery and recovering again
must converge to the same state (recovery is a resumption of in-order
propagation, so replaying a prefix twice is harmless)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import recover
from repro.kernel import Kernel, O_CREAT, O_WRONLY
from repro.nvmm import NvmmDevice
from repro.sim import Environment

from .test_recovery import CFG, fresh_stack, read_file


def reboot(kernel, ssd, image):
    """Fresh kernel over the surviving disk + an NVMM image."""
    env = Environment()
    ssd.reattach(env)
    kernel2 = Kernel(env)
    for mountpoint, fs in kernel.vfs._mounts:
        fs.env = env
        kernel2.mount(mountpoint, fs)
    return env, kernel2, NvmmDevice.from_image(env, image)


def run_partial_recovery(env, kernel, nvmm, stop_after: float):
    """Drive recovery but power-cut it after `stop_after` sim seconds.
    Returns the NVMM image as it stands at the cut."""
    process = env.spawn(recover(env, kernel, nvmm, CFG), name="recovery")
    process.subscribe(lambda _v, _e: None)
    env.run(until=env.now + stop_after)
    if process.alive:
        process.kill()
    kernel.crash()
    for fs in kernel.vfs.filesystems():
        fs.device.crash()
    return nvmm.crash_image()


@settings(max_examples=12, deadline=None)
@given(
    writes=st.lists(st.tuples(st.integers(0, 8000),
                              st.binary(min_size=1, max_size=900)),
                    min_size=2, max_size=12),
    cut=st.floats(min_value=1e-6, max_value=5e-3),
    seed=st.integers(0, 2**16),
)
def test_property_recovery_survives_its_own_crash(writes, cut, seed):
    env, kernel, ssd, nvmm, nv = fresh_stack(start_cleanup=False)

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        for offset, data in writes:
            yield from nv.pwrite(fd, data, offset)

    env.run_process(body())
    rng = random.Random(seed)
    image = nvmm.crash_image(rng=rng, eviction_probability=0.4)
    kernel.crash()
    ssd.crash()

    # First recovery attempt, power-cut partway through.
    env2, kernel2, nvmm2 = reboot(kernel, ssd, image)
    image2 = run_partial_recovery(env2, kernel2, nvmm2, stop_after=cut)

    # Second recovery runs to completion on whatever survived.
    env3, kernel3, nvmm3 = reboot(kernel2, ssd, image2)
    env3.run_process(recover(env3, kernel3, nvmm3, CFG))

    expected = bytearray()
    for offset, data in writes:
        if offset + len(data) > len(expected):
            expected.extend(b"\x00" * (offset + len(data) - len(expected)))
        expected[offset:offset + len(data)] = data
    recovered = read_file(env3, kernel3, "/f", len(expected) + 50)
    assert recovered == bytes(expected)


def test_double_full_recovery_is_idempotent():
    """Running recovery twice back-to-back (e.g. an operator re-runs the
    tool) changes nothing."""
    env, kernel, ssd, nvmm, nv = fresh_stack(start_cleanup=False)

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"once only", 0)
        yield from nv.pwrite(fd, b"tail", 5000)

    env.run_process(body())
    image = nvmm.crash_image()
    kernel.crash()
    ssd.crash()

    env2, kernel2, nvmm2 = reboot(kernel, ssd, image)
    first = env2.run_process(recover(env2, kernel2, nvmm2, CFG))
    assert first.entries_applied == 2
    second = env2.run_process(recover(env2, kernel2, nvmm2, CFG))
    assert second.entries_applied == 0  # log already emptied
    assert second.files_reopened == 0

    data = read_file(env2, kernel2, "/f", 5010)
    assert data[:9] == b"once only"
    assert data[5000:5004] == b"tail"


def test_recovery_crash_before_any_progress():
    """Cut recovery before it applies anything: the log is untouched and
    the next attempt recovers everything."""
    env, kernel, ssd, nvmm, nv = fresh_stack(start_cleanup=False)

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        yield from nv.pwrite(fd, b"payload", 0)

    env.run_process(body())
    image = nvmm.crash_image()
    kernel.crash()
    ssd.crash()

    env2, kernel2, nvmm2 = reboot(kernel, ssd, image)
    image2 = run_partial_recovery(env2, kernel2, nvmm2, stop_after=1e-9)

    env3, kernel3, nvmm3 = reboot(kernel2, ssd, image2)
    report = env3.run_process(recover(env3, kernel3, nvmm3, CFG))
    assert report.entries_applied == 1
    assert read_file(env3, kernel3, "/f", 10) == b"payload"


def test_idempotence_holds_at_every_enumerated_crash_point():
    """Exhaustive sweep: the explorer power-cuts a small write workload
    at every persistence boundary it crosses, recovers each image, and
    re-runs recovery on the recovered machine — the second pass must be
    a no-op everywhere (the ``recovery_idempotence`` invariant), with
    the rest of the durability contract holding alongside it."""
    from repro.faults import CrashExplorer, DEFAULT_INVARIANTS
    from repro.faults.workloads import fio_write_workload

    assert any(inv.name == "recovery_idempotence"
               for inv in DEFAULT_INVARIANTS)
    explorer = CrashExplorer(fio_write_workload(ops=6), drop_subsets=0)
    result = explorer.explore()
    assert len(result.points) >= 6
    assert result.violations == []

