"""tools/crash_explore.py golden test: the ``--json`` schema documented
in docs/CRASH_TESTING.md, and the ``--minimize`` report format.

The failing-sweep half plants an *unconditionally* leaky group commit
(commit word stored and queued, final ``psync`` skipped) behind a
monkeypatch; ``--jobs 1`` sweeps run in-process (the ShardEngine
sequential path), so the patched log is the one the CLI explores.
"""

import importlib.util
import json
import os
import sys

import pytest

import repro.core.log as log_mod

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))

#: Top-level keys of the ``--json`` summary — keep in lockstep with the
#: schema table in docs/CRASH_TESTING.md.
JSON_SCHEMA_KEYS = {"workload", "ok", "points", "explored", "cases",
                    "violations", "by_site", "by_invariant",
                    "failing_cases"}
FAILING_CASE_KEYS = {"point", "site", "label", "variant", "keep_lines",
                     "violations"}


@pytest.fixture(scope="module")
def crash_tool():
    spec = importlib.util.spec_from_file_location(
        "crash_explore_tool",
        os.path.join(REPO_ROOT, "tools", "crash_explore.py"))
    module = importlib.util.module_from_spec(spec)
    sys.modules["crash_explore_tool"] = module
    spec.loader.exec_module(module)
    return module


def plant_always_leaky_commit(monkeypatch) -> None:
    """Group commit that never drains its commit word: every
    crash-after-ack case loses acknowledged data."""
    def leaky_commit_leader(self, seq):
        addr = self._slot_addr(seq)
        self.nvmm.pfence()
        current = log_mod._HEADER.unpack(
            self.nvmm.load(addr, log_mod.HEADER_SIZE))
        self.nvmm.store(
            addr, log_mod._HEADER.pack(log_mod.COMMIT_LEADER, *current[1:]))
        self._slot_mirror[seq % self.entries] = (seq, log_mod.COMMIT_LEADER)
        self.nvmm.pwb(addr)
        recorder = self.env.crash_points
        if recorder is not None:
            recorder.hit("core.log.commit_word", f"seq {seq}")
        yield self.env.timeout(0.0)   # THE BUG: ack without psync
        recorder = self.env.crash_points
        if recorder is not None:
            recorder.hit("core.log.committed", f"seq {seq}")

    monkeypatch.setattr(log_mod.NvmmLog, "commit_leader",
                        leaky_commit_leader)


def test_json_summary_matches_the_documented_schema(crash_tool, capsys):
    code = crash_tool.main(["--workload", "fio", "--budget", "12",
                            "--json", "--check"])
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    assert set(summary) == JSON_SCHEMA_KEYS
    assert summary["workload"] == "fio"
    assert summary["ok"] is True
    assert summary["violations"] == 0
    assert summary["failing_cases"] == []
    # --budget trims the selection (end-of-run case rides on top).
    assert 12 <= summary["explored"] <= 13
    assert summary["cases"] >= summary["explored"]
    assert summary["points"] >= summary["explored"]
    assert all(isinstance(count, int)
               for count in summary["by_site"].values())
    assert summary["by_invariant"] == {}


def test_failing_sweep_json_schema(crash_tool, capsys, monkeypatch):
    plant_always_leaky_commit(monkeypatch)
    code = crash_tool.main(["--workload", "fio", "--budget", "16",
                            "--subsets", "2", "--seed", "0",
                            "--json", "--check"])
    assert code == 1
    summary = json.loads(capsys.readouterr().out)
    assert summary["ok"] is False
    assert summary["violations"] > 0
    assert sum(summary["by_invariant"].values()) == summary["violations"]
    # On fio's grouped writes the undrained commit word surfaces as a
    # torn group, not a lost ack.
    assert "group_commit_atomicity" in summary["by_invariant"]
    assert summary["failing_cases"]
    for case in summary["failing_cases"]:
        assert set(case) == FAILING_CASE_KEYS
        assert case["violations"], "failing case without violations"
        for violation in case["violations"]:
            assert set(violation) == {"invariant", "message"}


def test_minimize_shrinks_failing_survivor_sets(crash_tool, capsys,
                                                monkeypatch):
    plant_always_leaky_commit(monkeypatch)
    code = crash_tool.main(["--workload", "fio", "--budget", "16",
                            "--subsets", "2", "--seed", "0",
                            "--minimize", "--check"])
    assert code == 1
    out = capsys.readouterr().out
    assert "failing case(s):" in out
    assert "group_commit_atomicity:" in out
    # At least one failing survivor-subset case got shrunk, and the
    # report shows the before -> after line counts.
    assert "minimized survivor set:" in out
    assert "-> " in out


def test_unknown_workload_exits_2(crash_tool, capsys):
    with pytest.raises(SystemExit) as excinfo:
        crash_tool.main(["--workload", "postgres"])
    assert excinfo.value.code == 2
    capsys.readouterr()
