"""The crash explorer end-to-end: enumerate, crash everywhere, recover,
and hold the full durability contract on the paper's workloads."""

import pytest

from repro.faults import (
    CrashExplorer,
    DEFAULT_INVARIANTS,
    END_OF_RUN_SITE,
    ExplorationError,
)
from repro.faults.workloads import (
    db_bench_workload,
    fio_mixed_workload,
    fio_write_workload,
    kvstore_workload,
)


def test_fio_enumerates_at_least_100_crash_points():
    explorer = CrashExplorer(fio_write_workload())
    points = explorer.enumerate_points()
    assert len(points) >= 100
    assert [p.index for p in points] == list(range(len(points)))
    # Simulated time is monotone along the run.
    times = [p.time for p in points]
    assert times == sorted(times)


def test_fio_exhaustive_exploration_holds_every_invariant():
    """The acceptance sweep: every enumerated point on the fio write
    workload, drop-all plus one seeded survivor subset each, zero
    violations from all five invariants."""
    explorer = CrashExplorer(fio_write_workload(), drop_subsets=1, seed=0)
    result = explorer.explore()
    assert len(result.points) >= 100
    assert result.violations == []
    assert len(result.cases) > len(result.points)  # subsets explored too
    assert len(DEFAULT_INVARIANTS) == 5


def test_namespace_workload_holds_under_budget():
    explorer = CrashExplorer(fio_mixed_workload(), budget=40,
                             drop_subsets=1, seed=1)
    result = explorer.explore()
    assert result.violations == []
    # Namespace boundaries are genuinely in the enumeration.
    assert any(p.label.startswith("seq") and "fd -" in p.label
               for p in result.points)


@pytest.mark.parametrize("factory", [db_bench_workload, kvstore_workload])
def test_minirocks_workloads_hold_under_budget(factory):
    explorer = CrashExplorer(factory(), budget=30, drop_subsets=1, seed=2)
    result = explorer.explore()
    assert result.violations == []


def test_budget_samples_early_middle_and_late_points():
    explorer = CrashExplorer(fio_write_workload(), budget=10)
    points = explorer.enumerate_points()
    selected = explorer.select_indices()
    assert len(selected) == 10
    assert selected[0] == 0
    assert selected[-1] == len(points) - 1
    assert selected == sorted(selected)


def test_end_of_run_case_is_explored():
    explorer = CrashExplorer(fio_write_workload(), budget=3, drop_subsets=0)
    result = explorer.explore()
    assert any(case.point.site == END_OF_RUN_SITE for case in result.cases)
    assert result.violations == []


def test_group_commit_cases_are_exercised():
    """fio's 1024-byte writes over 512-byte entries make every write a
    two-entry commit group, so the group-atomicity invariant sees real
    multi-entry in-flight ops."""
    explorer = CrashExplorer(fio_write_workload(), budget=60, drop_subsets=0)
    result = explorer.explore()
    grouped = [case for case in result.cases
               if case.case.inflight is not None
               and case.case.inflight.kind == "pwrite"
               and case.case.inflight.entries > 1]
    assert grouped
    assert result.violations == []


def test_summary_is_human_readable():
    explorer = CrashExplorer(fio_write_workload(), budget=5, drop_subsets=0)
    result = explorer.explore()
    text = result.summary()
    assert "crash points enumerated" in text
    assert "violations:" in text


def test_armed_trigger_past_the_run_raises():
    explorer = CrashExplorer(fio_write_workload())
    points = explorer.enumerate_points()
    with pytest.raises(IndexError):
        explorer.run_case(len(points) + 5)


def test_nondeterministic_factory_is_caught():
    """A factory whose runs differ between enumeration and armed replay
    must fail loudly, not silently explore the wrong machine state."""
    calls = []

    def flaky_factory():
        calls.append(None)
        # Fewer ops on re-runs: the armed trigger index never fires.
        ops = 16 if len(calls) == 1 else 1
        return fio_write_workload(ops=ops)()

    explorer = CrashExplorer(flaky_factory)
    points = explorer.enumerate_points()
    with pytest.raises(ExplorationError):
        explorer.run_case(len(points) - 1)
