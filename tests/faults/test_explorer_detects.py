"""Negative control: the explorer must actually *catch* durability bugs.

The mutation reorders the commit protocol: the commit word is stored and
queued (pwb) but never fenced (no psync) before the write is
acknowledged. Live execution is indistinguishable — loads read the
volatile overlay — but a power cut can now lose acknowledged writes,
which is exactly what durable-after-ack exists to catch.
"""

from repro.core.log import (
    COMMIT_LEADER,
    HEADER_SIZE,
    NvmmLog,
    _HEADER,
)
from repro.faults import CrashExplorer
from repro.faults.workloads import fio_write_workload


def leaky_commit_leader(self, seq):
    """commit_leader without the final psync: ack precedes durability."""
    addr = self._slot_addr(seq)
    self.nvmm.pfence()
    current = _HEADER.unpack(self.nvmm.load(addr, HEADER_SIZE))
    self.nvmm.store(addr, _HEADER.pack(COMMIT_LEADER, *current[1:]))
    self.nvmm.pwb(addr)
    yield self.env.timeout(0.0)


def factory():
    # Cleanup off: entries must still be in the ring when the power cut
    # lands, otherwise the bug is masked by propagation to the disk.
    return fio_write_workload(ops=8, start_cleanup=False)()


def test_unmutated_control_passes():
    explorer = CrashExplorer(factory, budget=30, drop_subsets=1, seed=3)
    assert explorer.explore().violations == []


def test_commit_reorder_mutation_is_caught(monkeypatch):
    monkeypatch.setattr(NvmmLog, "commit_leader", leaky_commit_leader)
    explorer = CrashExplorer(factory, budget=30, drop_subsets=1, seed=3)
    result = explorer.explore()
    assert result.violations, "explorer failed to catch the lost-ack bug"
    assert any(v.invariant == "durable_after_ack" for v in result.violations)


def test_minimize_shrinks_a_failing_case(monkeypatch):
    """Greedy shrinking lands on a minimal survivor set that still
    reproduces the violation (typically the pure power cut, keep=())."""
    monkeypatch.setattr(NvmmLog, "commit_leader", leaky_commit_leader)
    explorer = CrashExplorer(factory, budget=30, drop_subsets=2, seed=3)
    result = explorer.explore()
    failing = [case for case in result.cases
               if case.violations and case.keep_lines]
    if not failing:  # every failure already minimal — nothing to shrink
        return
    smallest = explorer.minimize(failing[0])
    assert smallest.violations
    assert len(smallest.keep_lines) <= len(failing[0].keep_lines)
