"""Property sweep: seeded-random workloads against the in-memory oracle.

``fio_mixed_workload`` *is* a seeded generator (writes, fsyncs,
truncates, renames, unlinks over a small file set, fresh rename targets,
no writes through stale fds). Each seed yields a different op script;
the explorer crashes each script at an evenly spaced sample of its
persistence boundaries and checks the recovered state against the
oracle's two legal states. Across all seeds this drives well over 200
independently generated crash cases through the full invariant suite.
"""

from repro.faults import CrashExplorer, OracleOp
from repro.faults.workloads import fio_mixed_workload

SEEDS = range(12)
BUDGET = 10


def test_generated_workloads_hold_all_invariants_everywhere():
    total_cases = 0
    failures = []
    for seed in SEEDS:
        explorer = CrashExplorer(fio_mixed_workload(ops=12, seed=seed),
                                 budget=BUDGET, drop_subsets=1, seed=seed)
        result = explorer.explore()
        total_cases += len(result.cases)
        failures.extend(result.violations)
    assert total_cases >= 200, f"only {total_cases} cases generated"
    assert not failures, "\n".join(str(v) for v in failures[:10])


def test_distinct_seeds_generate_distinct_scripts():
    """Sanity: the generator really varies with its seed (otherwise the
    sweep above is 12 copies of one workload)."""
    scripts = set()
    for seed in (0, 1, 2):
        explorer = CrashExplorer(fio_mixed_workload(ops=12, seed=seed))
        points = explorer.enumerate_points()
        scripts.add(tuple(point.label for point in points))
    assert len(scripts) == 3


def test_oracle_tracks_the_two_legal_states_mid_op():
    """The oracle's before/after split is what the invariants lean on:
    mid-pwrite they must differ exactly on the written range."""
    run = fio_mixed_workload(ops=0)()

    def body():
        from repro.kernel.fd_table import O_CREAT, O_WRONLY
        fd = yield from run.libc.open("/f", O_CREAT | O_WRONLY)
        yield from run.libc.pwrite(fd, b"A" * 100, 0)
        run.oracle.begin(OracleOp(kind="pwrite", path="/f",
                                  offset=50, data=b"B" * 100))
        before, after = run.oracle.expected_states()
        assert before["/f"] == b"A" * 100
        assert after["/f"] == b"A" * 50 + b"B" * 100
        run.oracle.abort()

    run.env.run_process(body())
