"""Property suite: FileModelOracle vs. the fully-recovered stack.

Hypothesis draws arbitrary schedules from the fuzz grammar
(``repro.fuzz.schedule``) — the same total interpreter the fuzzer
mutates, so every draw is valid by construction — runs each one to
completion on a fresh crash stack, power-cuts *after* the final drain,
recovers, and requires the recovered files to agree byte-for-byte with
the oracle's model of the acknowledged state (the end-of-run crash case
has nothing in flight, so the oracle's two legal states coincide and
the invariant suite collapses to exact agreement).

A second property crashes mid-run at a drawn fraction of the case's own
crash-point stream and checks the full invariant suite — the one-case
version of what a fuzz campaign does thousands of times. When either
property fails, hypothesis shrinks the schedule to a minimal
counterexample, which is exactly the triage artifact you want first.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import CrashExplorer
from repro.fuzz import FuzzCase, build_fuzz_run, crash_indices

_slots = st.integers(0, 3)

_op = st.one_of(
    st.tuples(st.just("open")),
    st.tuples(st.just("pwrite"), _slots, st.integers(0, 7),
              st.integers(0, 4), st.integers(0, 255)),
    st.tuples(st.just("append"), _slots, st.integers(0, 4),
              st.integers(0, 255)),
    st.tuples(st.just("fsync"), _slots),
    st.tuples(st.just("ftruncate"), _slots, st.integers(0, 2047)),
    st.tuples(st.just("rename"), _slots),
    st.tuples(st.just("unlink"), _slots),
    st.tuples(st.just("recreate"), _slots),
)

_schedules = st.lists(_op, min_size=1, max_size=10).map(tuple)


def explorer_for(schedule) -> CrashExplorer:
    case = FuzzCase(schedule=schedule)
    return CrashExplorer(lambda: build_fuzz_run(case), drop_subsets=0,
                         include_end_of_run=True)


@settings(max_examples=25, deadline=None)
@given(schedule=_schedules)
def test_recovered_stack_agrees_with_oracle_at_end_of_run(schedule):
    explorer = explorer_for(schedule)
    result = explorer.run_case(None)
    assert not result.violations, "\n".join(
        f"{v.invariant}: {v.message}" for v in result.violations)


@settings(max_examples=15, deadline=None)
@given(schedule=_schedules, frac=st.floats(0.0, 0.999))
def test_mid_run_crash_recovers_to_a_legal_state(schedule, frac):
    explorer = explorer_for(schedule)
    points = explorer.enumerate_points()
    case = FuzzCase(schedule=schedule, crash_fracs=(frac,))
    [index] = crash_indices(case, len(points))
    result = explorer.run_case(index)
    assert not result.violations, "\n".join(
        f"{v.invariant} at #{index} [{result.point.site}]: {v.message}"
        for v in result.violations)
