"""Crash-point recording: determinism, coverage, and — most important —
that the hooks are semantically invisible when no recorder is attached."""

import subprocess
import sys

import pytest

from repro.faults.recorder import CrashPointRecorder
from repro.faults.workloads import build_crash_run, fio_write_workload
from repro.sim import Environment


def drive(run):
    process = run.env.spawn(run.body(), name="workload")
    process.subscribe(lambda _v, _e: run.env.stop())
    run.env.run()
    assert process.exception is None
    assert not process.alive


def fingerprint(run):
    """Everything an instrumentation bug could perturb."""
    return (
        run.env.now,
        bytes(run.nvmm.persisted_view()),
        run.nvmm.dirty_lines(),
        run.ssd.stats.writes,
        run.ssd.stats.flushes,
        run.nvcache.stats.cleanup_batches,
        run.nvcache.stats.cleanup_entries,
    )


def test_recording_does_not_perturb_the_simulation():
    """Clocks, NVMM contents, and device stats are bit-identical with and
    without a recorder attached: hit() never advances simulated time."""
    bare = fio_write_workload()()
    drive(bare)

    recorded = fio_write_workload()()
    recorder = CrashPointRecorder(recorded.env, record=True)
    drive(recorded)
    recorder.detach()

    assert recorder.count > 0
    assert fingerprint(bare) == fingerprint(recorded)


def test_normal_runs_do_not_import_the_faults_package():
    """The instrumentation hooks live behind ``env.crash_points`` checks;
    building and running a full stack must not pull in repro.faults."""
    code = (
        "import sys\n"
        "from repro.block import SsdDevice\n"
        "from repro.core import Nvcache, NvcacheConfig, NvmmLog, recover\n"
        "from repro.fs import Ext4\n"
        "from repro.kernel import Kernel\n"
        "from repro.nvmm import NvmmDevice\n"
        "from repro.sim import Environment\n"
        "bad = [m for m in sys.modules if m.startswith('repro.faults')]\n"
        "assert not bad, bad\n"
    )
    subprocess.run([sys.executable, "-c", code], check=True)


def test_enumeration_is_deterministic():
    first = fio_write_workload()()
    rec1 = CrashPointRecorder(first.env, record=True)
    drive(first)
    rec1.detach()

    second = fio_write_workload()()
    rec2 = CrashPointRecorder(second.env, record=True)
    drive(second)
    rec2.detach()

    assert rec1.points == rec2.points


def test_fio_run_covers_every_boundary_layer():
    """The drained fio workload passes through NVMM, log, cleanup, block
    and filesystem persistence boundaries."""
    run = fio_write_workload()()
    recorder = CrashPointRecorder(run.env, record=True)
    drive(run)
    recorder.detach()

    sites = set(recorder.site_histogram())
    assert {"nvmm.pwb", "nvmm.pfence", "nvmm.psync",
            "core.log.entry_filled", "core.log.commit_word",
            "core.log.committed", "core.log.cleared",
            "core.cleanup.batch_retired",
            "block.write_completed", "block.flush_completed",
            "fs.ext4.journal_commit"} <= sites


def test_armed_trigger_fires_once_and_stops_the_environment():
    run = fio_write_workload()()
    recorder = CrashPointRecorder(run.env, record=False)
    seen = []
    recorder.arm(5, lambda: seen.append(run.env.now))
    process = run.env.spawn(run.body(), name="workload")
    process.subscribe(lambda _v, _e: run.env.stop())
    run.env.run()
    recorder.detach()

    assert process.alive  # stopped mid-flight, not completed
    assert recorder.triggered is not None
    assert recorder.triggered.index == 5
    assert seen == [recorder.triggered.time]


def test_only_one_recorder_per_environment():
    env = Environment()
    first = CrashPointRecorder(env, record=False)
    with pytest.raises(RuntimeError):
        CrashPointRecorder(env, record=False)
    first.detach()
    assert env.crash_points is None


def test_probe_annotations_land_on_points():
    run = build_crash_run()

    def body():
        from repro.kernel.fd_table import O_CREAT, O_WRONLY
        fd = yield from run.libc.open("/p", O_CREAT | O_WRONLY)
        yield from run.libc.pwrite(fd, b"x" * 64, 0)
        yield from run.libc.close(fd)

    run.body = body
    recorder = CrashPointRecorder(
        run.env, record=True,
        probe=lambda: {"dirty_lines": run.nvmm.dirty_line_count()})
    drive(run)
    recorder.detach()

    assert any(point.dirty_lines > 0 for point in recorder.points)
