"""Snapshot/restore determinism: a warm-started run (restored from a
quiescent checkpoint) must be byte-identical to a cold run that executed
the same phased workload from scratch — same simulated clock, same event
sequence counter, same dispatch count, same NVCache stats, same NVMM and
SSD contents, same metrics view, same crash-point stream. Also pins the
guard rails: snapshots of non-quiescent machines are refused, and a
checkpoint written to disk restores faithfully in a fresh OS process.
"""

import hashlib
import os
import pickle
import subprocess
import sys
from dataclasses import asdict

import pytest

from repro.faults import (Checkpoint, CrashExplorer, CrashPointRecorder,
                          SnapshotError, WarmStartFactory, db_bench_phased,
                          fio_write_phased, kvstore_phased, restore_run,
                          take_checkpoint)
from repro.obs import MetricsRegistry
from repro.sim import Environment

PHASED = {
    "fio": fio_write_phased,
    "db_bench": db_bench_phased,
    "kvstore": kvstore_phased,
}


def machine_digest(run):
    """Every observable channel of a finished run, as comparable values."""
    registry = MetricsRegistry()
    run.nvcache.register_metrics(registry)
    return {
        "now": run.env.now,
        "sequence": run.env._sequence,
        "dispatched": run.env.events_dispatched,
        "stats": asdict(run.nvcache.stats),
        "log": (run.nvcache.log.head, run.nvcache.log.volatile_tail),
        "nvmm_persisted": hashlib.sha256(run.nvmm.persisted_view()).hexdigest(),
        "nvmm_dirty": run.nvmm.dirty_lines(),
        "ssd_durable": run.ssd.durable_snapshot(),
        "oracle": run.oracle.expected_states(),
        "metrics": registry.snapshot_detailed(),
    }


def drive_cold(maker):
    factory = WarmStartFactory(maker())
    run = factory.cold_run()
    recorder = CrashPointRecorder(run.env)
    run.drive(True)
    return run, recorder.points


def drive_warm(maker, checkpoint=None):
    factory = WarmStartFactory(maker(), checkpoint=checkpoint)
    run = factory()
    recorder = CrashPointRecorder(run.env)
    run.drive(True)
    return run, recorder.points, run.crash_point_base


@pytest.mark.parametrize("name", sorted(PHASED))
def test_warm_run_matches_cold_run_exactly(name):
    maker = PHASED[name]
    cold_run, cold_points = drive_cold(maker)
    warm_run, warm_points, base = drive_warm(maker)

    assert base > 0
    # The warm stream is exactly the cold stream's post-checkpoint
    # suffix: same sites, labels, and simulated times, indices shifted
    # by the prefix length.
    suffix = cold_points[base:]
    assert [(p.site, p.label, p.time) for p in warm_points] == \
        [(p.site, p.label, p.time) for p in suffix]
    assert [p.index + base for p in warm_points] == \
        [p.index for p in suffix]
    assert machine_digest(warm_run) == machine_digest(cold_run)


@pytest.mark.parametrize("trace", [False, True])
def test_warm_explorer_equals_cold_explorer(trace):
    """Full sweep comparison, tracing on and off: every case a warm
    explorer produces (including prefix cases, which silently fall back
    to cold runs) equals the cold explorer's case — and tracing changes
    nothing."""
    def case_dump(result):
        return [(c.point.index, c.point.site, c.point.label, c.point.time,
                 c.variant, c.keep_lines,
                 tuple(sorted(c.case.state.items())),
                 tuple(sorted(c.case.state2.items())),
                 c.case.applied, c.case.applied2)
                for c in result.cases]

    maker = PHASED["fio"]
    shared = WarmStartFactory(maker(), trace=trace)

    class ColdOnly:
        def __call__(self):
            return shared.cold_run()

    cold = CrashExplorer(ColdOnly(), budget=12, drop_subsets=1,
                         seed=0).explore()
    warm = CrashExplorer(WarmStartFactory(maker(), trace=trace), budget=12,
                         drop_subsets=1, seed=0).explore()
    assert [str(p) for p in warm.points] == [str(p) for p in cold.points]
    assert case_dump(warm) == case_dump(cold)
    assert warm.ok == cold.ok


def test_checkpoint_restores_to_recorded_position():
    checkpoint = take_checkpoint(fio_write_phased())
    run = restore_run(checkpoint)
    assert run.env.now == checkpoint.now
    assert run.env._sequence == checkpoint.sequence
    assert run.env.events_dispatched == checkpoint.events_dispatched
    assert run.env.pending_events() == []
    assert run.env.crash_points is None and run.env.tracer is None
    # Cross-phase scratch state survived: the fd and the seeded RNG.
    assert "fd" in run.scratch and "rng" in run.scratch


def test_non_quiescent_environment_refuses_to_pickle():
    env = Environment()
    env.schedule_call(1.0, lambda: None)
    with pytest.raises(ValueError, match="non-quiescent"):
        pickle.dumps(env)
    # A cancelled entry does not count as pending.
    seq = env.schedule_call(2.0, lambda: None)
    env.cancel(seq)
    env._cancelled.add(env._sequence - 2)  # cancel the first one too
    assert env.pending_events() == []
    pickle.dumps(env)


def test_restore_in_fresh_process(tmp_path):
    """A checkpoint written to disk by one process restores in another
    and finishes phase B with the exact machine digest the parent's
    in-process cold run produced."""
    path = str(tmp_path / "fio.ckpt")
    checkpoint = take_checkpoint(fio_write_phased())
    checkpoint.save(path)

    child_src = """
import hashlib, sys
from repro.faults import Checkpoint, CrashPointRecorder, WarmStartFactory, fio_write_phased
checkpoint = Checkpoint.load(sys.argv[1])
factory = WarmStartFactory(fio_write_phased(), checkpoint=checkpoint)
run = factory()
recorder = CrashPointRecorder(run.env)
run.drive(True)
stream = "".join(f"{p.site}|{p.label}|{p.time!r};" for p in recorder.points)
print(run.env.now, run.env._sequence, run.env.events_dispatched,
      hashlib.sha256(stream.encode()).hexdigest(),
      hashlib.sha256(run.nvmm.persisted_view()).hexdigest())
"""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(os.path.join(
        os.path.dirname(__file__), "..", "..", "src"))
    child = subprocess.run([sys.executable, "-c", child_src, path],
                           capture_output=True, text=True, env=env,
                           timeout=120)
    assert child.returncode == 0, child.stderr

    cold_run, cold_points = drive_cold(fio_write_phased)
    base = checkpoint.base_hits
    stream = "".join(f"{p.site}|{p.label}|{p.time!r};"
                     for p in cold_points[base:])
    expected = "%r %d %d %s %s" % (
        cold_run.env.now, cold_run.env._sequence,
        cold_run.env.events_dispatched,
        hashlib.sha256(stream.encode()).hexdigest(),
        hashlib.sha256(cold_run.nvmm.persisted_view()).hexdigest())
    assert child.stdout.split() == expected.split()


def test_checkpoint_is_reused_not_retaken():
    factory = WarmStartFactory(fio_write_phased())
    first = factory.checkpoint()
    assert factory.checkpoint() is first
    # Two independent factories produce semantically equal checkpoints.
    # (Payload *bytes* are not the contract: filesystem device ids come
    # from a process-global counter, so a second machine built in the
    # same process pickles with a different st_dev — by design.)
    other = WarmStartFactory(fio_write_phased()).checkpoint()
    assert (other.base_hits, other.now, other.sequence,
            other.events_dispatched) == (first.base_hits, first.now,
                                         first.sequence,
                                         first.events_dispatched)
    warm_a, points_a, base_a = drive_warm(fio_write_phased, checkpoint=first)
    warm_b, points_b, base_b = drive_warm(fio_write_phased, checkpoint=other)
    assert base_a == base_b
    assert [(p.site, p.label, p.time) for p in points_a] == \
        [(p.site, p.label, p.time) for p in points_b]
    assert machine_digest(warm_a) == machine_digest(warm_b)


def test_checkpoint_load_rejects_foreign_pickles(tmp_path):
    path = str(tmp_path / "bogus.ckpt")
    with open(path, "wb") as f:
        pickle.dump({"not": "a checkpoint"}, f)
    with pytest.raises(SnapshotError):
        Checkpoint.load(path)
