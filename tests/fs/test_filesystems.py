"""Behavioural tests for each simulated filesystem."""

import pytest

from repro.block import RamDisk, SsdDevice
from repro.fs import DmWriteCache, Ext4, Ext4Dax, Nova, Tmpfs
from repro.kernel import Kernel, KernelError, O_CREAT, O_DIRECT, O_RDONLY, O_RDWR, O_SYNC, O_WRONLY
from repro.kernel.errno import ENOSPC
from repro.nvmm import NvmmDevice
from repro.sim import Environment
from repro.units import MIB


@pytest.fixture
def env():
    return Environment()


def run(env, gen):
    return env.run_process(gen)


def make_kernel(env, fs):
    kernel = Kernel(env)
    kernel.mount("/", fs)
    return kernel


def write_read_roundtrip(env, fs):
    kernel = make_kernel(env, fs)

    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_RDWR)
        payload = bytes(range(256)) * 64  # 16 KiB
        yield from kernel.write(fd, payload)
        yield from kernel.fsync(fd)
        data = yield from kernel.pread(fd, len(payload), 0)
        return payload, data

    payload, data = run(env, body())
    assert data == payload


def test_ext4_roundtrip(env):
    write_read_roundtrip(env, Ext4(env, SsdDevice(env, size=256 * MIB)))


def test_tmpfs_roundtrip(env):
    write_read_roundtrip(env, Tmpfs(env))


def test_nova_roundtrip(env):
    write_read_roundtrip(env, Nova(env, NvmmDevice(env, size=64 * MIB)))


def test_ext4dax_roundtrip(env):
    write_read_roundtrip(env, Ext4Dax(env, NvmmDevice(env, size=64 * MIB)))


def test_dm_writecache_roundtrip(env):
    ssd = SsdDevice(env, size=256 * MIB)
    dm = DmWriteCache(env, ssd, cache_size=16 * MIB)
    write_read_roundtrip(env, Ext4(env, dm))


# -- Ext4 specifics ---------------------------------------------------------


def test_ext4_enospc(env):
    tiny = RamDisk(env, size=2 * MIB)
    fs = Ext4(env, tiny, journal_size=1 * MIB)
    kernel = make_kernel(env, fs)

    def body():
        fd = yield from kernel.open("/big", O_CREAT | O_WRONLY | O_DIRECT)
        for i in range(1024):
            yield from kernel.pwrite(fd, b"x" * 4096, i * 4096)

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == ENOSPC


def test_ext4_unlink_frees_blocks(env):
    device = RamDisk(env, size=4 * MIB)
    fs = Ext4(env, device, journal_size=1 * MIB)
    kernel = make_kernel(env, fs)

    def cycle(name):
        fd = yield from kernel.open(name, O_CREAT | O_WRONLY | O_DIRECT)
        for i in range(256):
            yield from kernel.pwrite(fd, b"y" * 4096, i * 4096)
        yield from kernel.close(fd)
        yield from kernel.unlink(name)

    # Far more data than the device holds; must succeed thanks to reuse.
    for round_number in range(8):
        run(env, cycle(f"/file{round_number}"))


def test_ext4_commit_touches_journal_and_flushes(env):
    device = SsdDevice(env, size=64 * MIB)
    fs = Ext4(env, device)
    inode = fs.create("/f")

    def body():
        # An allocation makes metadata pending -> full journal commit.
        yield from fs.write_page(inode, 0, b"j" * 4096)
        yield from fs.commit()

    run(env, body())
    assert device.stats.writes == 2  # data page + journal record
    assert device.stats.flushes == 1


def test_ext4_commit_fdatasync_fast_path(env):
    """Without pending metadata, commit is just a device flush."""
    device = SsdDevice(env, size=64 * MIB)
    fs = Ext4(env, device)
    inode = fs.create("/f")

    def body():
        yield from fs.write_page(inode, 0, b"a" * 4096)
        yield from fs.commit()
        # Overwrite in place: no allocation, no journal record.
        yield from fs.write_page(inode, 0, b"b" * 4096)
        yield from fs.commit()

    run(env, body())
    # writes: data, journal, data (no second journal record)
    assert device.stats.writes == 3
    assert device.stats.flushes == 2


def test_ext4_sequential_allocation_is_contiguous(env):
    device = SsdDevice(env, size=64 * MIB)
    fs = Ext4(env, device)
    inode = fs.create("/seq")

    def body():
        for i in range(8):
            yield from fs.write_page(inode, i, b"s" * 4096)

    run(env, body())
    blocks = inode.private["blocks"]
    offsets = [blocks[i] for i in range(8)]
    assert offsets == list(range(offsets[0], offsets[0] + 8))


# -- tmpfs specifics ---------------------------------------------------------


def test_tmpfs_crash_loses_everything(env):
    fs = Tmpfs(env)
    kernel = make_kernel(env, fs)

    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_WRONLY)
        yield from kernel.write(fd, b"volatile")
        yield from kernel.fsync(fd)  # fsync cannot save tmpfs data

    run(env, body())
    fs.crash()
    assert fs.lookup("/f") is None


def test_tmpfs_is_fastest(env):
    def timed(fs):
        k_env = fs.env
        kernel = make_kernel(k_env, fs)

        def body():
            fd = yield from kernel.open("/f", O_CREAT | O_WRONLY | O_SYNC)
            start = k_env.now
            for i in range(50):
                yield from kernel.pwrite(fd, b"t" * 4096, i * 4096)
            return k_env.now - start

        return k_env.run_process(body())

    env_a, env_b = Environment(), Environment()
    tmpfs_time = timed(Tmpfs(env_a))
    ext4_time = timed(Ext4(env_b, SsdDevice(env_b, size=64 * MIB)))
    assert tmpfs_time < ext4_time / 10


# -- NVMM filesystems ------------------------------------------------------------


def test_nova_capacity_limit(env):
    """Table I: NOVA cannot store more than the NVMM size."""
    fs = Nova(env, NvmmDevice(env, size=1 * MIB))
    kernel = make_kernel(env, fs)

    def body():
        fd = yield from kernel.open("/big", O_CREAT | O_WRONLY)
        for i in range(512):
            yield from kernel.pwrite(fd, b"n" * 4096, i * 4096)

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == ENOSPC


def test_nova_overwrite_does_not_leak_capacity(env):
    fs = Nova(env, NvmmDevice(env, size=1 * MIB))
    kernel = make_kernel(env, fs)

    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_WRONLY)
        for _ in range(600):  # overwrites the same page: no new allocation
            yield from kernel.pwrite(fd, b"o" * 4096, 0)

    run(env, body())
    assert fs.used_bytes() == 4096


def test_nova_write_durable_without_fsync(env):
    """NOVA (cow_data) provides synchronous durability by default."""
    fs = Nova(env, NvmmDevice(env, size=16 * MIB))
    kernel = make_kernel(env, fs)

    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_WRONLY)
        yield from kernel.write(fd, b"durable-no-fsync")

    run(env, body())
    kernel.crash()  # page cache gone; NOVA data unaffected

    def check():
        fd = yield from kernel.open("/f", O_RDONLY)
        data = yield from kernel.read(fd, 100)
        return data

    assert run(env, check()) == b"durable-no-fsync"


def test_ext4dax_capacity_limit(env):
    fs = Ext4Dax(env, NvmmDevice(env, size=1 * MIB))
    kernel = make_kernel(env, fs)

    def body():
        fd = yield from kernel.open("/big", O_CREAT | O_WRONLY)
        for i in range(512):
            yield from kernel.pwrite(fd, b"d" * 4096, i * 4096)

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == ENOSPC


def test_nova_faster_than_ext4dax_for_sync_writes():
    """Paper Fig 4: NOVA ~403 MiB/s vs Ext4-DAX ~137 MiB/s."""

    def timed(make_fs):
        env = Environment()
        fs = make_fs(env)
        kernel = Kernel(env)
        kernel.mount("/", fs)

        def body():
            fd = yield from kernel.open("/f", O_CREAT | O_WRONLY | O_SYNC)
            start = env.now
            for i in range(200):
                yield from kernel.pwrite(fd, b"z" * 4096, i * 4096)
            return 200 * 4096 / (env.now - start)

        return env.run_process(body())

    nova_rate = timed(lambda e: Nova(e, NvmmDevice(e, size=64 * MIB)))
    dax_rate = timed(lambda e: Ext4Dax(e, NvmmDevice(e, size=64 * MIB)))
    assert nova_rate > 1.8 * dax_rate


# -- dm-writecache specifics --------------------------------------------------------


def test_dm_writecache_absorbs_writes_fast(env):
    ssd = SsdDevice(env, size=256 * MIB)
    dm = DmWriteCache(env, ssd, cache_size=64 * MIB)

    def body():
        start = env.now
        for i in range(100):
            yield from dm.write(i * 4096, b"c" * 4096)
            yield from dm.flush()
        return 100 * 4096 / (env.now - start)

    rate = run(env, body())
    # Far faster than the raw SSD's sync write rate (~15 MiB/s).
    assert rate > 100 * MIB


def test_dm_writecache_read_through_origin(env):
    ssd = SsdDevice(env, size=64 * MIB)
    dm = DmWriteCache(env, ssd, cache_size=8 * MIB)

    def body():
        yield from ssd.write(40960, b"origin-data")
        yield from ssd.flush()
        data = yield from dm.read(40960, 11)
        return data

    assert run(env, body()) == b"origin-data"


def test_dm_writecache_writeback_drains_to_origin(env):
    ssd = SsdDevice(env, size=256 * MIB)
    dm = DmWriteCache(env, ssd, cache_size=1 * MIB, high_watermark=0.3,
                      low_watermark=0.1)

    def body():
        for i in range(200):
            yield from dm.write(i * 4096, b"w" * 4096)
        # Allow the writeback daemon to run.
        yield env.timeout(2.0)
        return ssd.stats.writes

    assert run(env, body()) > 0


def test_dm_writecache_survives_crash(env):
    """dm-writecache data in NVMM persists across power loss (but data
    still in the kernel page cache above it does not — see Table IV)."""
    ssd = SsdDevice(env, size=64 * MIB)
    dm = DmWriteCache(env, ssd, cache_size=8 * MIB)

    def body():
        yield from dm.write(0, b"persisted-in-nvmm")
        yield from dm.flush()

    run(env, body())
    dm.crash()

    def check():
        data = yield from dm.read(0, 17)
        return data

    assert run(env, check()) == b"persisted-in-nvmm"
