"""tools/fuzz.py contract: subcommands, exit codes, JSON output.

Exit codes match tools/crash_explore.py: 0 clean, 1 findings with
``--check``, 2 usage or harness error. The tool is loaded via importlib
and driven through ``main(argv)`` in-process (same idiom as
tests/parallel/test_ci_run.py) so the whole matrix stays fast.
"""

import importlib.util
import json
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


@pytest.fixture(scope="module")
def fuzz_tool():
    spec = importlib.util.spec_from_file_location(
        "fuzz_tool", os.path.join(REPO_ROOT, "tools", "fuzz.py"))
    module = importlib.util.module_from_spec(spec)
    sys.modules["fuzz_tool"] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def corpus_dir(fuzz_tool, tmp_path_factory):
    """One small campaign, shared by the read-only subcommand tests."""
    root = str(tmp_path_factory.mktemp("corpus"))
    code = fuzz_tool.main(["run", "--seed", "3", "--cases", "16",
                           "--corpus", root, "--html", "--check"])
    assert code == 0  # the fixed stack is clean
    return root


def test_run_json_summary_has_the_triage_fields(fuzz_tool, capsys, tmp_path):
    code = fuzz_tool.main(["run", "--seed", "0", "--cases", "12", "--json",
                           "--corpus", str(tmp_path / "c")])
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["seed"] == 0
    assert summary["cases_run"] == 12
    assert summary["harness_errors"] == 0
    assert summary["corpus_digest"]
    assert summary["coverage"]["edges"] > 0
    assert summary["growth"], "growth curve must not be empty"


def test_run_writes_the_documented_corpus_layout(corpus_dir):
    assert os.path.isdir(os.path.join(corpus_dir, "cases"))
    assert os.path.isfile(os.path.join(corpus_dir, "campaign.json"))
    assert os.path.isfile(os.path.join(corpus_dir, "report.html"))
    with open(os.path.join(corpus_dir, "campaign.json")) as handle:
        summary = json.load(handle)
    on_disk = sorted(name[:-len(".json")] for name in
                     os.listdir(os.path.join(corpus_dir, "cases")))
    assert on_disk == sorted(summary["corpus"])


def test_triage_text_report(fuzz_tool, corpus_dir, capsys):
    assert fuzz_tool.main(["triage", corpus_dir, "--check"]) == 0
    out = capsys.readouterr().out
    assert "seed:" in out
    assert "corpus:" in out


def test_triage_replays_a_case_by_digest(fuzz_tool, corpus_dir, capsys):
    with open(os.path.join(corpus_dir, "campaign.json")) as handle:
        digest = json.load(handle)["corpus"][0]
    code = fuzz_tool.main(["triage", corpus_dir, "--case", digest,
                           "--json", "--check"])
    assert code == 0
    replay = json.loads(capsys.readouterr().out)
    assert replay["digest"] == digest
    assert replay["violations"] == []
    assert replay["edges"] > 0


def test_compare_is_reflexively_empty(fuzz_tool, corpus_dir, capsys):
    assert fuzz_tool.main(
        ["compare", corpus_dir, corpus_dir, "--json"]) == 0
    diff = json.loads(capsys.readouterr().out)
    assert diff["edges_only_a"] == []
    assert diff["findings_only_a"] == []
    assert diff["common_edges"] > 0


def test_usage_errors_exit_2(fuzz_tool, tmp_path, capsys):
    # --html without --corpus
    assert fuzz_tool.main(["run", "--cases", "4", "--html"]) == 2
    # unknown seed family
    assert fuzz_tool.main(["run", "--cases", "4",
                           "--families", "postgres"]) == 2
    # triage of a directory no campaign ever wrote
    missing = str(tmp_path / "nope")
    assert fuzz_tool.main(["triage", missing]) == 2
    assert not os.path.exists(missing), \
        "read-only triage must not create the mistyped directory"
    # replay of an unknown digest
    assert fuzz_tool.main(["triage", str(tmp_path), "--case",
                           "000000000000"]) == 2
    capsys.readouterr()
