"""On-disk corpus format: round-trips, dedup-by-digest, lazy layout."""

import json
import os

from repro.fuzz import Corpus, FuzzCase, corpus_digest

CASE = FuzzCase(schedule=(("append", 0, 1, 107), ("fsync", 0)),
                crash_fracs=(0.4,), survivor_seed=3,
                fault_plan=(("tear", 5),))


def test_case_round_trips_under_its_digest(tmp_path):
    corpus = Corpus(str(tmp_path))
    digest = corpus.write_case(CASE, origin="seed:kvstore", new_edges=12)
    assert digest == CASE.digest()
    assert corpus.load_case(digest) == CASE
    [row] = corpus.load_cases()
    assert row["origin"] == "seed:kvstore"
    assert row["new_edges"] == 12


def test_rewriting_the_same_case_is_idempotent(tmp_path):
    corpus = Corpus(str(tmp_path))
    corpus.write_case(CASE, origin="seed:kvstore", new_edges=12)
    corpus.write_case(CASE, origin="seed:kvstore", new_edges=12)
    assert len(corpus.load_cases()) == 1


def test_files_are_canonical_json(tmp_path):
    corpus = Corpus(str(tmp_path))
    digest = corpus.write_case(CASE, origin="fresh", new_edges=0)
    path = tmp_path / "cases" / f"{digest}.json"
    text = path.read_text()
    assert text.endswith("\n") and not text.endswith("\n\n")
    payload = json.loads(text)
    assert text == json.dumps(payload, sort_keys=True, indent=2) + "\n"


def test_read_only_access_never_creates_directories(tmp_path):
    root = tmp_path / "not-written-yet"
    corpus = Corpus(str(root))
    assert corpus.load_cases() == []
    assert corpus.load_findings() == []
    assert corpus.load_case("feedfacefeed") is None
    assert corpus.load_finding("feedfacefeed") is None
    assert not os.path.exists(root)


def test_finding_round_trips(tmp_path):
    corpus = Corpus(str(tmp_path))
    finding = {"digest": CASE.digest(), "case": CASE.to_fields(),
               "invariant": "durable_after_ack", "site": "core.log.filled",
               "variant": 0, "message": "boom"}
    corpus.write_finding(finding)
    assert corpus.load_finding(CASE.digest()) == finding
    assert corpus.load_findings() == [finding]


def test_corpus_digest_is_order_insensitive_and_content_sensitive():
    a = corpus_digest(["aaa", "bbb", "ccc"])
    assert corpus_digest(["ccc", "aaa", "bbb"]) == a
    assert corpus_digest(["aaa", "bbb"]) != a
    assert len(a) == 16
