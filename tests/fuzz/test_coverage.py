"""The coverage collector is a pure observer — gated in CI.

The fitness signal must never steer the thing it measures: a run traced
by :class:`~repro.fuzz.coverage.CoverageCollector` has to be
bit-identical — simulated clock, NVCache stats, the full ordered
crash-point stream — to the same run without it. These tests drive one
deterministic fuzz schedule both ways and compare everything; CI runs
them in the ``fuzz`` suite (docs/CI.md).

Also pinned here: capture-window semantics (scope filtering, no
nesting, GC deferral). The GC rule is a regression test — automatic
cyclic collection used to finalize *earlier* cases' abandoned
simulation generators inside a later capture window, recording their
exception-handler lines against the wrong case and making edges depend
on process heap history.
"""

import dataclasses
import gc

import pytest

from repro.faults.recorder import CrashPointRecorder
from repro.fuzz import (CoverageCollector, FuzzCase, build_fuzz_run,
                        seed_cases, split_edges)

CASE = FuzzCase(schedule=(
    ("pwrite", 0, 0, 2, 65), ("fsync", 0), ("ftruncate", 0, 300),
    ("open",), ("append", 1, 1, 66), ("rename", 1), ("fsync", 1),
    ("unlink", 0),
))


def drive(collector=None):
    """Run CASE to completion; return (clock, stats dict, point stream)."""
    run = build_fuzz_run(CASE)
    recorder = CrashPointRecorder(run.env, record=True)
    process = run.env.spawn(run.body(), name="workload")
    process.subscribe(lambda value, error: run.env.stop())
    if collector is None:
        run.env.run()
        edges = None
    else:
        with collector.capture() as window:
            run.env.run()
        edges = window.edges
    stream = [(p.index, p.site, p.label, p.time) for p in recorder.points]
    return run.env.now, dataclasses.asdict(run.nvcache.stats), stream, edges


def test_collector_does_not_perturb_clock_stats_or_crash_stream():
    collector = CoverageCollector(force_trace_hook=True)
    bare_now, bare_stats, bare_stream, _ = drive()
    traced_now, traced_stats, traced_stream, edges = drive(collector)
    assert traced_now == bare_now          # exact float equality, no tolerance
    assert traced_stats == bare_stats
    assert traced_stream == bare_stream
    assert edges, "the traced run recorded no edges at all"


def test_edges_are_scope_relative_and_in_scope():
    collector = CoverageCollector(force_trace_hook=True)
    _, _, _, edges = drive(collector)
    assert all(edge.startswith(("core/", "fs/")) for edge in edges), \
        sorted(edge for edge in edges
               if not edge.startswith(("core/", "fs/")))[:5]
    # The schedule exercises log, cleanup, recovery-adjacent paths.
    touched_files = {edge.split(":")[0] for edge in edges}
    assert "core/log.py" in touched_files
    assert "core/nvcache.py" in touched_files


def test_repeated_captures_of_the_same_run_are_identical():
    """Edge sets are a function of the case, not of heap history."""
    collector = CoverageCollector(force_trace_hook=True)
    first = drive(collector)[3]
    # Leave cyclic garbage from run 1 (abandoned generators) lying
    # around; the collector must keep its finalization out of run 2's
    # window.
    second = drive(collector)[3]
    third = drive(collector)[3]
    assert first == second == third


def test_gc_is_deferred_during_capture_and_restored_after():
    collector = CoverageCollector(force_trace_hook=True)
    assert gc.isenabled()
    with collector.capture():
        assert not gc.isenabled()
    assert gc.isenabled()
    # A disabled-at-entry state is preserved, not force-enabled.
    gc.disable()
    try:
        with collector.capture():
            assert not gc.isenabled()
        assert not gc.isenabled()
    finally:
        gc.enable()


def test_captures_must_not_nest():
    collector = CoverageCollector(force_trace_hook=True)
    with collector.capture():
        with pytest.raises(RuntimeError, match="nest"):
            with collector.capture():
                pass
    assert gc.isenabled()


def test_split_edges_partitions_lines_and_sites():
    edges = {"core/log.py:10", "site:core.log.committed", "fs/ext4.py:5"}
    lines, sites = split_edges(edges)
    assert lines == {"core/log.py:10", "fs/ext4.py:5"}
    assert sites == {"site:core.log.committed"}


def test_seed_cases_cover_every_family_and_are_stable():
    cases = seed_cases()
    assert len(cases) == 5
    digests = [case.digest() for case in cases]
    assert len(set(digests)) == 5
    assert seed_cases()[0].digest() == digests[0]
