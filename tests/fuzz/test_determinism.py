"""Sharding must be invisible: ``--jobs N`` is a throughput knob only.

Two campaigns with the same seed — one in-process (``--jobs 1``), one
sharded across 4 worker processes — must write byte-identical corpus
trees: every ``cases/*.json`` and ``findings/*.json`` file,
``campaign.json``, and ``report.html``. The engine guarantees this by
drawing fixed-size candidate batches from the campaign RNG *before*
execution and ingesting results in batch order, never arrival order;
this test is the contract's pin.
"""

import filecmp
import importlib.util
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))

SEED = "3"
CASES = "24"


@pytest.fixture(scope="module")
def fuzz_tool():
    spec = importlib.util.spec_from_file_location(
        "fuzz_tool_determinism", os.path.join(REPO_ROOT, "tools", "fuzz.py"))
    module = importlib.util.module_from_spec(spec)
    sys.modules["fuzz_tool_determinism"] = module
    spec.loader.exec_module(module)
    return module


def tree(root):
    """{relative path: absolute path} for every file under root."""
    out = {}
    for base, _dirs, names in os.walk(root):
        for name in names:
            path = os.path.join(base, name)
            out[os.path.relpath(path, root)] = path
    return out


@pytest.fixture(scope="module")
def corpora(fuzz_tool, tmp_path_factory):
    sequential = str(tmp_path_factory.mktemp("jobs1"))
    sharded = str(tmp_path_factory.mktemp("jobs4"))
    for root, jobs in ((sequential, "1"), (sharded, "4")):
        code = fuzz_tool.main(["run", "--seed", SEED, "--cases", CASES,
                               "--jobs", jobs, "--corpus", root, "--html"])
        assert code == 0
    return sequential, sharded


def test_same_file_set(corpora):
    sequential, sharded = corpora
    assert sorted(tree(sequential)) == sorted(tree(sharded))
    names = sorted(tree(sequential))
    assert "campaign.json" in names
    assert "report.html" in names
    assert any(name.startswith("cases" + os.sep) for name in names)


def test_every_file_is_byte_identical(corpora):
    sequential, sharded = corpora
    left = tree(sequential)
    right = tree(sharded)
    different = [name for name in sorted(left)
                 if not filecmp.cmp(left[name], right[name], shallow=False)]
    assert different == [], \
        f"jobs 1 vs jobs 4 disagree on: {different}"


def test_triage_reports_are_byte_identical(fuzz_tool, corpora, capsys):
    sequential, sharded = corpora
    assert fuzz_tool.main(["triage", sequential]) == 0
    first = capsys.readouterr().out
    assert fuzz_tool.main(["triage", sharded]) == 0
    second = capsys.readouterr().out
    assert first == second
