"""Regression-seeding: the fuzzer must re-find a planted durability bug.

The plant is a *leaky group commit* — a staircase variant of the bug
class the crash harness fixed in docs/CRASH_TESTING.md: once the log
has filled at least two ``OP_TRUNCATE`` and two ``OP_RENAME`` entries,
``commit_leader`` skips its final ``psync``, so the commit word is
stored and queued but not durably drained. The application still gets
its ack; a crash before the *next* persist barrier drops the commit
line and the acknowledged write with it.

No seed case reaches the staircase (the richest seed logs one truncate
and one rename), so a campaign only trips it after mutation stacks up
namespace ops — which is exactly what the coverage signal rewards:
extra truncates/renames execute new lines in log/recovery, the child
is admitted to the corpus, and its lineage keeps the ops. The blind
``--no-feedback`` baseline mutates only the fixed seeds and never
accumulates, so under the same budget it finds nothing. Both campaigns
are fully deterministic, so the split is a stable pin, not a flake:
if a future change shifts coverage enough to move the trajectory,
re-tune CAMPAIGN_SEED/BUDGET rather than weaken the assertions.
"""

import pytest

import repro.core.log as log_mod
from repro.fuzz import (FuzzCase, FuzzConfig, FuzzEngine, run_case_task,
                        seed_cases)
from repro.fuzz import executor

CAMPAIGN_SEED = 1
BUDGET = 80


def plant_leaky_commit(monkeypatch) -> None:
    """Install the staircase bug behind test-only monkeypatches.

    ``NvmmLog`` has ``__slots__``, so the per-log namespace-op tally
    lives in an id-keyed side table; ``__init__`` is patched to clear
    the slot because a rebuilt stack can reuse a dead log's id.
    """
    real_fill = log_mod.NvmmLog.fill_entry
    real_init = log_mod.NvmmLog.__init__
    ns_fills = {}

    def patched_init(self, *args, **kwargs):
        real_init(self, *args, **kwargs)
        ns_fills.pop(id(self), None)

    def patched_fill(self, seq, fd, offset, data, leader_seq=None):
        if fd in (log_mod.OP_TRUNCATE, log_mod.OP_RENAME):
            ns_fills.setdefault(id(self), []).append(fd)
        return real_fill(self, seq, fd, offset, data, leader_seq)

    def leaky_commit_leader(self, seq):
        seen = ns_fills.get(id(self), [])
        leaky = (seen.count(log_mod.OP_TRUNCATE) >= 2
                 and seen.count(log_mod.OP_RENAME) >= 2)
        addr = self._slot_addr(seq)
        self.nvmm.pfence()
        current = log_mod._HEADER.unpack(
            self.nvmm.load(addr, log_mod.HEADER_SIZE))
        self.nvmm.store(
            addr, log_mod._HEADER.pack(log_mod.COMMIT_LEADER, *current[1:]))
        self._slot_mirror[seq % self.entries] = (seq, log_mod.COMMIT_LEADER)
        self.nvmm.pwb(addr)
        recorder = self.env.crash_points
        if recorder is not None:
            recorder.hit("core.log.commit_word", f"seq {seq}")
        if leaky:
            # THE BUG: ack without draining the commit line.
            yield self.env.timeout(0.0)
        else:
            yield from self.nvmm.psync()
        recorder = self.env.crash_points
        if recorder is not None:
            recorder.hit("core.log.committed", f"seq {seq}")

    monkeypatch.setattr(log_mod.NvmmLog, "__init__", patched_init)
    monkeypatch.setattr(log_mod.NvmmLog, "fill_entry", patched_fill)
    monkeypatch.setattr(log_mod.NvmmLog, "commit_leader",
                        leaky_commit_leader)


@pytest.fixture
def leaky_commit_stack(monkeypatch):
    plant_leaky_commit(monkeypatch)
    # The executor caches explorers (with enumerated crash points) by
    # case digest; patched and unpatched enumerations must never mix.
    executor._EXPLORERS.clear()
    yield
    executor._EXPLORERS.clear()


def campaign(feedback: bool):
    config = FuzzConfig(seed=CAMPAIGN_SEED, max_cases=BUDGET,
                        feedback=feedback, minimize=False)
    return FuzzEngine(config).run()


def test_feedback_campaign_finds_the_planted_bug(leaky_commit_stack):
    result = campaign(feedback=True)
    assert result.stats.harness_errors == 0
    invariants = {invariant for invariant, _site in result.findings}
    assert "durable_after_ack" in invariants, (
        "planted leaky commit not found within the budget; "
        f"findings: {sorted(result.findings)}")


def test_blind_baseline_misses_the_planted_bug(leaky_commit_stack):
    result = campaign(feedback=False)
    assert result.stats.harness_errors == 0
    assert not result.findings, (
        "the no-feedback baseline was not supposed to reach the "
        f"staircase within {BUDGET} cases — coverage guidance is no "
        "longer pulling its weight as a comparison point")


def test_found_case_is_clean_on_the_fixed_stack():
    """The finding is the plant, not a latent stack bug: replaying the
    found case with the patches lifted recovers clean."""
    with pytest.MonkeyPatch.context() as patches:
        plant_leaky_commit(patches)
        executor._EXPLORERS.clear()
        result = campaign(feedback=True)
        finding = next(
            fields for (invariant, _), fields in sorted(result.findings.items())
            if invariant == "durable_after_ack")
    executor._EXPLORERS.clear()
    case = FuzzCase.from_fields(finding["case"])
    outcome = run_case_task(case.to_fields())
    assert outcome["error"] is None
    assert outcome["violations"] == []


def test_seed_cases_do_not_reach_the_staircase(leaky_commit_stack):
    """The plant must be un-triggerable by the seed corpus alone, or
    the blind baseline would trivially find it in batch one."""
    for case in seed_cases():
        outcome = run_case_task(case.to_fields())
        assert outcome["error"] is None
        assert outcome["violations"] == [], case.digest()
