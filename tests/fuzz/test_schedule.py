"""The fuzz-case grammar: wire format, digests, generation, mutation,
and the total interpreter."""

import random

import pytest

from repro.fuzz import FuzzCase, build_fuzz_run, fresh_case, mutate
from repro.fuzz.schedule import (FAULT_KINDS, MAX_FRACS, MAX_OPS,
                                 MUTATION_KINDS, OP_KINDS, seed_cases)


def some_case() -> FuzzCase:
    return FuzzCase(schedule=(("pwrite", 0, 1, 2, 70), ("fsync", 0)),
                    crash_fracs=(0.25, 0.75), survivor_seed=7,
                    fault_plan=(("fail", 3),))


def test_wire_format_round_trips():
    case = some_case()
    assert FuzzCase.from_fields(case.to_fields()) == case


def test_digest_is_stable_and_field_sensitive():
    case = some_case()
    assert case.digest() == FuzzCase.from_fields(case.to_fields()).digest()
    assert len(case.digest()) == 12
    from dataclasses import replace
    assert replace(case, survivor_seed=8).digest() != case.digest()
    assert replace(case, crash_fracs=(0.5,)).digest() != case.digest()


def test_stack_digest_ignores_crash_selection():
    from dataclasses import replace
    case = some_case()
    assert replace(case, crash_fracs=(0.9,),
                   survivor_seed=0).stack_digest() == case.stack_digest()
    assert replace(case, fault_plan=()).stack_digest() != case.stack_digest()


def test_fresh_cases_are_deterministic_per_rng_seed():
    a = [fresh_case(random.Random(5)) for _ in range(3)]
    b = [fresh_case(random.Random(5)) for _ in range(3)]
    assert [c.digest() for c in a][0] == [c.digest() for c in b][0]
    case = a[0]
    assert 4 <= len(case.schedule) <= 12
    assert 1 <= len(case.crash_fracs) <= MAX_FRACS
    assert all(op[0] in OP_KINDS for op in case.schedule)
    assert all(kind in FAULT_KINDS for kind, _ in case.fault_plan)


def test_mutation_stays_inside_the_grammar():
    rng = random.Random(11)
    pool = seed_cases()
    case = pool[0]
    for _ in range(200):
        case, used = mutate(rng, case, pool)
        assert used, "mutate must report the operators that fired"
        assert all(kind in MUTATION_KINDS for kind in used)
        assert 1 <= len(case.schedule) <= MAX_OPS
        assert 1 <= len(case.crash_fracs) <= MAX_FRACS
        assert all(op[0] in OP_KINDS for op in case.schedule)
        # Wire format survives arbitrary mutation chains.
        assert FuzzCase.from_fields(case.to_fields()) == case


@pytest.mark.parametrize("schedule", [
    (("unlink", 0),),                      # op before any open
    (("rename", 2), ("rename", 2)),        # slot beyond table size
    (("ftruncate", 0, 0), ("append", 0, 0, 1)),
    (("recreate", 1), ("pwrite", 3, 7, 4, 255)),
])
def test_interpreter_is_total(schedule):
    """Every grammar schedule runs to completion — no invalid cases."""
    run = build_fuzz_run(FuzzCase(schedule=schedule))
    process = run.env.spawn(run.body(), name="workload")
    outcome = {}
    process.subscribe(lambda value, error: (
        outcome.__setitem__("error", error), run.env.stop()))
    run.env.run()
    assert outcome["error"] is None


def test_fault_plan_arms_injector_and_pre_reboot_disarms():
    case = FuzzCase(schedule=(("pwrite", 0, 0, 2, 65), ("fsync", 0)),
                    fault_plan=(("fail", 0),))
    run = build_fuzz_run(case)
    assert run.ssd.fault_injector is not None
    assert run.pre_reboot is not None
    run.pre_reboot(run)
    assert run.ssd.fault_injector is None
