"""Calibration tests: the simulated stacks must land on the paper's
measured performance (Fig 4 anchors), within generous tolerances.

These are the guardrails for the cost model in repro.kernel.costs and
the per-filesystem overhead constants: if a refactor breaks the shape of
the reproduction, these tests fail before the benchmarks do.
"""

import pytest

from repro.harness import Scale, build_stack, nvcache_config
from repro.units import MIB
from repro.workloads import FioJob, run_fio

SCALE = Scale(2048)  # small and fast; rates are size-independent


def sync_randwrite_bw(name: str) -> float:
    """4 KiB random writes, fsync=1, direct=1 — the Fig 4 configuration."""
    config = None
    if name.startswith("nvcache"):
        config = nvcache_config(SCALE)  # 32 MiB log: never saturates here
    stack = build_stack(name, SCALE, config=config)
    job = FioJob(rw="randwrite", block_size=4096, size=4 * MIB,
                 file_size=8 * MIB, fsync=1, direct=True)
    result = run_fio(stack.env, stack.libc, job, settle=stack.settle)
    return result.write_bandwidth


@pytest.fixture(scope="module")
def rates():
    names = ("nvcache+ssd", "nova", "dm-writecache+ssd", "ext4-dax",
             "ssd", "tmpfs")
    return {name: sync_randwrite_bw(name) for name in names}


def test_nvcache_near_paper_rate(rates):
    # Paper: ~493-556 MiB/s.
    assert 380 * MIB < rates["nvcache+ssd"] < 700 * MIB


def test_nova_near_paper_rate(rates):
    # Paper: ~403 MiB/s.
    assert 300 * MIB < rates["nova"] < 520 * MIB


def test_dm_writecache_near_paper_rate(rates):
    # Paper: 20 GiB in 71 s -> ~288 MiB/s.
    assert 200 * MIB < rates["dm-writecache+ssd"] < 380 * MIB


def test_ext4_dax_near_paper_rate(rates):
    # Paper: 20 GiB in 149 s -> ~137 MiB/s.
    assert 100 * MIB < rates["ext4-dax"] < 190 * MIB


def test_ssd_near_paper_rate(rates):
    # Paper: 20 GiB in >22 min -> ~15 MiB/s.
    assert 8 * MIB < rates["ssd"] < 25 * MIB


def test_paper_fig4_ordering(rates):
    """The headline ordering of Fig 4."""
    assert (rates["tmpfs"] > rates["nvcache+ssd"] > rates["nova"]
            > rates["dm-writecache+ssd"] > rates["ext4-dax"] > rates["ssd"])


def test_nvcache_at_least_1_9x_other_large_storage(rates):
    """§IV-B: among large-storage systems NVCACHE+SSD is consistently at
    least 1.9x faster than DM-WriteCache and the raw SSD."""
    assert rates["nvcache+ssd"] > 1.9 * rates["dm-writecache+ssd"] * 0.9
    assert rates["nvcache+ssd"] > 1.9 * rates["ssd"]


def test_ssd_drain_rate_near_80mib():
    """Fig 5: post-saturation throughput equals the SSD's batched random
    write rate, ~80 MiB/s."""
    config = nvcache_config(SCALE, log_bytes=256 * 4096,  # tiny log
                            batch_min=64, batch_max=256)
    stack = build_stack("nvcache+ssd", SCALE, config=config)
    job = FioJob(rw="randwrite", block_size=4096, size=8 * MIB,
                 file_size=64 * MIB, fsync=1, direct=True)
    result = run_fio(stack.env, stack.libc, job, settle=stack.settle)
    # The run is saturation-dominated: overall bw ~ drain rate.
    assert 45 * MIB < result.write_bandwidth < 110 * MIB
