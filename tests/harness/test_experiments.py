"""Smoke tests for the per-figure experiment drivers at a tiny scale
(the benchmarks run them at full scale with shape assertions)."""

import pytest

from repro.harness import (
    Scale,
    fig3_db_bench,
    fig4_comparative_behavior,
    fig5_log_saturation,
    fig6_batching,
    fig7_read_cache_size,
    format_table,
    mib_per_s,
    saturation_point,
    sparkline,
)
from repro.units import MIB

TINY = Scale(16384)


def test_fig4_returns_all_systems():
    results = fig4_comparative_behavior(TINY, systems=("nvcache+ssd", "ssd"))
    assert set(results) == {"nvcache+ssd", "ssd"}
    assert results["nvcache+ssd"].write_bandwidth > results["ssd"].write_bandwidth
    # rates are scale-independent
    assert results["nvcache+ssd"].write_bandwidth > 300 * MIB


def test_fig5_smaller_log_is_slower():
    results = fig5_log_saturation(TINY)
    bandwidths = [result.write_bandwidth for result in results.values()]
    assert bandwidths == sorted(bandwidths)


def test_fig6_batch1_worst():
    results = fig6_batching(TINY, batch_sizes=(1, 100))
    assert results["batch=1"].write_bandwidth < results["batch=100"].write_bandwidth


def test_fig7_runs():
    results = fig7_read_cache_size(TINY, cache_pages=(100, 10_000))
    for result in results.values():
        assert result.bytes_read > 0
        assert result.bytes_written > 0


def test_fig3_kv_tiny():
    result = fig3_db_bench("kvstore", TINY, systems=("nvcache+ssd", "ssd"),
                           num=150, benchmarks=("fillrandom", "readrandom"))
    assert result.ops("nvcache+ssd", "fillrandom") > result.ops("ssd", "fillrandom")
    assert result.ops("nvcache+ssd", "readrandom") > 0


def test_fig3_sql_tiny():
    result = fig3_db_bench("sqldb", TINY, systems=("nvcache+ssd", "nova"),
                           num=60, benchmarks=("fillrandom",))
    assert result.ops("nvcache+ssd", "fillrandom") > result.ops("nova", "fillrandom")


def test_fig3_unknown_application():
    with pytest.raises(ValueError):
        fig3_db_bench("postgres", TINY, systems=("ssd",), num=5,
                      benchmarks=("fillrandom",))


def test_saturation_point_flat_series_none():
    results = fig4_comparative_behavior(TINY, systems=("nvcache+ssd",))
    assert saturation_point(results["nvcache+ssd"]) is None


# -- reporting helpers --------------------------------------------------------


def test_format_table_alignment():
    text = format_table(["a", "bb"], [["x", 1], ["yyyy", 22]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "yyyy" in lines[-1]
    assert len(set(len(line) for line in lines[2:])) == 1  # aligned rows


def test_mib_per_s():
    assert mib_per_s(512 * MIB) == "512.0 MiB/s"


def test_sparkline_shapes():
    assert sparkline([]) == ""
    flat = sparkline([5.0] * 10)
    assert len(set(flat)) == 1
    ramp = sparkline(list(range(100)), width=10)
    assert len(ramp) == 10
    assert ramp[0] != ramp[-1]
