"""Tests for the stack builder and the Table I / Table IV data."""

import pytest

from repro.harness import (
    PROPERTY_MATRIX,
    SYSTEM_NAMES,
    Scale,
    TABLE_IV,
    build_stack,
    nvcache_config,
)
from repro.kernel import O_CREAT, O_RDWR
from repro.units import GIB, MIB

SMALL = Scale(4096)


@pytest.mark.parametrize("name", SYSTEM_NAMES)
def test_every_stack_does_io(name):
    stack = build_stack(name, SMALL)

    def body():
        fd = yield from stack.libc.open("/probe", O_CREAT | O_RDWR)
        yield from stack.libc.pwrite(fd, b"probe-data", 0)
        yield from stack.libc.fsync(fd)
        data = yield from stack.libc.pread(fd, 10, 0)
        yield from stack.libc.close(fd)
        yield from stack.teardown()
        return data

    assert stack.env.run_process(body()) == b"probe-data"


def test_unknown_stack_rejected():
    with pytest.raises(ValueError):
        build_stack("zfs", SMALL)


def test_nvcache_stacks_have_nvcache():
    for name in SYSTEM_NAMES:
        stack = build_stack(name, SMALL)
        if name.startswith("nvcache"):
            assert stack.nvcache is not None
        else:
            assert stack.nvcache is None


def test_scale_arithmetic():
    scale = Scale(256)
    assert scale.of(256 * GIB) == 1 * GIB
    assert scale.nvcache_log_bytes == 64 * GIB // 256
    assert scale.dm_cache_bytes == 128 * GIB // 256
    # Tiny sizes clamp to a floor rather than reaching zero.
    assert Scale(10**9).of(1 * MIB) > 0


def test_nvcache_config_paper_defaults():
    config = nvcache_config(Scale(1))
    assert config.entry_data_size == 4096
    assert config.log_entries == 16 * 1024 * 1024  # paper: 16 M entries
    assert config.batch_min == 1000
    assert config.batch_max == 10000


def test_table1_matrix_shape():
    assert set(PROPERTY_MATRIX) == {
        "ext4-dax", "nova", "strata", "splitfs", "dm-writecache", "nvcache"}
    for row in PROPERTY_MATRIX.values():
        assert set(row) == {"large_storage", "sync_durability",
                            "durable_linearizability", "legacy_fs",
                            "stock_kernel", "legacy_kernel_api"}
    # The paper's headline: only NVCACHE has no '-' anywhere.
    flawless = [name for name, row in PROPERTY_MATRIX.items()
                if all(value.startswith("+") for value in row.values())]
    assert flawless == ["nvcache"]


def test_table4_covers_all_built_systems():
    assert set(TABLE_IV) == set(SYSTEM_NAMES)
    assert TABLE_IV["nvcache+ssd"]["sync_durability"] == "by default"
    assert TABLE_IV["tmpfs"]["sync_durability"] == "no"
    assert TABLE_IV["dm-writecache+ssd"]["durable_linearizability"] == "no"


def test_stack_settle_quiesces_nvcache():
    stack = build_stack("nvcache+ssd", SMALL)

    def body():
        fd = yield from stack.libc.open("/f", O_CREAT | O_RDWR)
        yield from stack.libc.pwrite(fd, b"x" * 4096, 0)
        yield from stack.settle()
        return stack.nvcache.log.used()

    assert stack.env.run_process(body()) == 0
