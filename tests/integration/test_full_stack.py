"""Whole-stack integration: legacy databases over NVCache over the
simulated kernel, including crash recovery *through both layers* (NVCache
log replay first, then the application's own journal/WAL recovery)."""


from repro.apps import KVOptions, MiniRocks, MiniSqlite
from repro.block import SsdDevice
from repro.core import Nvcache, NvcacheConfig, NvmmLog, recover
from repro.fs import Ext4
from repro.kernel import Kernel
from repro.libc import Libc, NvcacheLibc
from repro.nvmm import NvmmDevice
from repro.sim import Environment
from repro.units import KIB, MIB

CFG = NvcacheConfig(log_entries=8192, read_cache_pages=128, batch_min=32,
                    batch_max=512, fd_max=512, cleanup_idle_flush=0.005)


def build():
    env = Environment()
    ssd = SsdDevice(env, size=512 * MIB)
    kernel = Kernel(env)
    kernel.mount("/", Ext4(env, ssd))
    nvmm = NvmmDevice(env, size=NvmmLog.required_size(CFG))
    nvcache = Nvcache(env, kernel, nvmm, CFG)
    return env, kernel, ssd, nvmm, nvcache


def crash_and_reboot(env, kernel, ssd, nvmm):
    image = nvmm.crash_image()
    kernel.crash()
    ssd.crash()
    env2 = Environment()
    ssd.reattach(env2)
    kernel2 = Kernel(env2)
    for mountpoint, fs in kernel.vfs._mounts:
        fs.env = env2
        kernel2.mount(mountpoint, fs)
    nvmm2 = NvmmDevice.from_image(env2, image)
    report = env2.run_process(recover(env2, kernel2, nvmm2, CFG))
    return env2, kernel2, report


def test_kvstore_crash_recovery_through_both_layers():
    """Put records with sync WAL, crash without any drain, recover the
    NVCache log, then reopen the DB: the WAL replay must restore every
    acknowledged record."""
    env, kernel, ssd, nvmm, nvcache = build()
    libc = NvcacheLibc(nvcache)
    nvcache.cleanup.stop()  # worst case: nothing propagated

    def workload():
        db = yield from MiniRocks.open(
            libc, "/kv", KVOptions(sync=True, memtable_bytes=1 * MIB))
        for i in range(120):
            yield from db.put(f"key{i:05d}".encode(), f"value-{i}".encode())
        # no close, no flush: crash now

    env.run_process(workload())
    env2, kernel2, report = crash_and_reboot(env, kernel, ssd, nvmm)
    assert report.entries_applied > 0

    def after():
        db = yield from MiniRocks.open(Libc(kernel2), "/kv", KVOptions(sync=True))
        missing = []
        for i in range(120):
            value = yield from db.get(f"key{i:05d}".encode())
            if value != f"value-{i}".encode():
                missing.append(i)
        yield from db.close()
        return missing, db.stats.wal_replay_records

    missing, replayed = env2.run_process(after())
    assert missing == []
    assert replayed == 120  # everything came back through the WAL


def test_sqlite_committed_txns_survive_crash():
    env, kernel, ssd, nvmm, nvcache = build()
    libc = NvcacheLibc(nvcache)

    def workload():
        db = yield from MiniSqlite.open(libc, "/app.db")
        for i in range(25):
            yield from db.insert(f"row{i:03d}".encode(), f"data{i}".encode())
        # crash without close

    env.run_process(workload())
    env2, kernel2, _report = crash_and_reboot(env, kernel, ssd, nvmm)

    def after():
        db = yield from MiniSqlite.open(Libc(kernel2), "/app.db")
        values = []
        for i in range(25):
            values.append((yield from db.select(f"row{i:03d}".encode())))
        yield from db.close()
        return values

    values = env2.run_process(after())
    assert values == [f"data{i}".encode() for i in range(25)]


def test_sqlite_mid_transaction_crash_rolls_back():
    """Crash inside an explicit transaction: after both recovery layers,
    the partial transaction is invisible and earlier commits survive."""
    env, kernel, ssd, nvmm, nvcache = build()
    libc = NvcacheLibc(nvcache)

    def workload():
        db = yield from MiniSqlite.open(libc, "/app.db")
        yield from db.insert(b"committed", b"before")
        yield from db.begin()
        yield from db.insert(b"torn", b"half")
        # crash inside the transaction (journal exists, db pages may be
        # partially updated after this partial flush):
        for number in sorted(db.pager._dirty):
            yield from libc.pwrite(db.pager.fd, db.pager._dirty[number],
                                   number * 4096)

    env.run_process(workload())
    env2, kernel2, _report = crash_and_reboot(env, kernel, ssd, nvmm)

    def after():
        db = yield from MiniSqlite.open(Libc(kernel2), "/app.db")
        committed = yield from db.select(b"committed")
        torn = yield from db.select(b"torn")
        rollbacks = db.pager.rollbacks
        yield from db.close()
        return committed, torn, rollbacks

    committed, torn, rollbacks = env2.run_process(after())
    assert committed == b"before"
    assert torn is None
    assert rollbacks == 1  # the hot journal was replayed


def test_sustained_mixed_workload_invariants():
    """A longer run mixing both databases on one NVCache instance; all
    internal invariants must hold afterwards and the log must drain."""
    env, kernel, ssd, nvmm, nvcache = build()
    libc = NvcacheLibc(nvcache)

    def workload():
        kv = yield from MiniRocks.open(
            libc, "/kv", KVOptions(sync=True, memtable_bytes=32 * KIB))
        sql = yield from MiniSqlite.open(libc, "/app.db")
        for i in range(150):
            yield from kv.put(f"k{i:04d}".encode(), b"v" * 64)
            if i % 3 == 0:
                yield from sql.insert(f"s{i:04d}".encode(), b"row" * 8)
            if i % 10 == 0:
                value = yield from kv.get(f"k{i // 2:04d}".encode())
                assert value is not None or i == 0
        yield from kv.close()
        yield from sql.close()
        yield nvcache.cleanup.request_drain()
        yield env.timeout(0.05)
        nvcache.check_invariants()
        return True

    assert env.run_process(workload()) is True
    assert nvcache.log.used() == 0
    assert nvcache.tables.deferred_close == set()

    def kernel_view():
        st = yield from kernel.stat("/app.db")
        return st.st_size

    assert env.run_process(kernel_view()) > 0


def test_wal_mode_sqlite_crash_recovery_through_both_layers():
    """journal_mode=WAL over NVCache: commits are durable through the
    NVMM log even when neither the -wal file nor the db reached the
    disk before the crash."""
    env, kernel, ssd, nvmm, nvcache = build()
    libc = NvcacheLibc(nvcache)
    nvcache.cleanup.stop()  # nothing propagated at all

    def workload():
        db = yield from MiniSqlite.open(libc, "/app.db", journal_mode="wal")
        for i in range(20):
            yield from db.insert(f"row{i:03d}".encode(), f"wal{i}".encode())
        # crash without close or checkpoint

    env.run_process(workload())
    env2, kernel2, report = crash_and_reboot(env, kernel, ssd, nvmm)
    assert report.entries_applied > 0

    def after():
        db = yield from MiniSqlite.open(Libc(kernel2), "/app.db",
                                        journal_mode="wal")
        values = []
        for i in range(20):
            values.append((yield from db.select(f"row{i:03d}".encode())))
        yield from db.close()
        return values

    values = env2.run_process(after())
    assert values == [f"wal{i}".encode() for i in range(20)]
