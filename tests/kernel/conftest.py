"""Shared fixtures: a kernel with Ext4-on-SSD mounted at /."""

import pytest

from repro.block import SsdDevice
from repro.fs import Ext4
from repro.kernel import Kernel
from repro.sim import Environment
from repro.units import MIB


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def ssd(env):
    return SsdDevice(env, size=512 * MIB)


@pytest.fixture
def kernel(env, ssd):
    k = Kernel(env)
    k.mount("/", Ext4(env, ssd))
    return k


def run(env, gen):
    return env.run_process(gen)
