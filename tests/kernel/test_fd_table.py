"""Unit tests for fd allocation, open-file descriptions, and errno."""

import pytest

from repro.kernel import (
    FdTable,
    KernelError,
    O_APPEND,
    O_DIRECT,
    O_RDONLY,
    O_RDWR,
    O_SYNC,
    O_WRONLY,
    OpenFile,
)
from repro.kernel.errno import EBADF, EMFILE, ENOENT, errno_name
from repro.kernel.inode import Inode, S_IFDIR, S_IFREG, stat_of


def make_open_file(flags=O_RDONLY):
    return OpenFile(inode=Inode(number=1), filesystem=None, path="/x",
                    flags=flags)


def test_lowest_free_fd_allocation():
    table = FdTable()
    fds = [table.allocate(make_open_file()) for _ in range(3)]
    assert fds == [3, 4, 5]  # 0-2 reserved
    table.release(4)
    assert table.allocate(make_open_file()) == 4  # lowest free reused


def test_get_unknown_fd_raises_ebadf():
    table = FdTable()
    with pytest.raises(KernelError) as exc:
        table.get(7)
    assert exc.value.errno == EBADF


def test_release_unknown_fd_raises():
    table = FdTable()
    with pytest.raises(KernelError):
        table.release(3)


def test_lookup_returns_none_for_missing():
    table = FdTable()
    assert table.lookup(3) is None


def test_table_exhaustion_raises_emfile():
    table = FdTable(max_fds=6)
    for _ in range(3):
        table.allocate(make_open_file())
    with pytest.raises(KernelError) as exc:
        table.allocate(make_open_file())
    assert exc.value.errno == EMFILE


def test_open_fds_and_len():
    table = FdTable()
    table.allocate(make_open_file())
    table.allocate(make_open_file())
    assert len(table) == 2
    assert sorted(table.open_fds()) == [3, 4]


def test_open_file_mode_predicates():
    readonly = make_open_file(O_RDONLY)
    assert readonly.readable and not readonly.writable
    writeonly = make_open_file(O_WRONLY)
    assert writeonly.writable and not writeonly.readable
    readwrite = make_open_file(O_RDWR)
    assert readwrite.readable and readwrite.writable


def test_open_file_flag_predicates():
    flagged = make_open_file(O_WRONLY | O_APPEND | O_DIRECT | O_SYNC)
    assert flagged.append and flagged.direct and flagged.sync
    plain = make_open_file(O_WRONLY)
    assert not (plain.append or plain.direct or plain.sync)


def test_errno_name():
    assert errno_name(ENOENT) == "ENOENT"
    assert errno_name(99999).startswith("E?")


def test_kernel_error_message_carries_name():
    error = KernelError(ENOENT, "/missing/file")
    assert error.errno == ENOENT
    assert "ENOENT" in str(error)
    assert "/missing/file" in str(error)


def test_inode_kind_predicates():
    regular = Inode(number=1, mode=S_IFREG | 0o644)
    directory = Inode(number=2, mode=S_IFDIR | 0o755)
    assert regular.is_regular and not regular.is_dir
    assert directory.is_dir and not directory.is_regular


def test_stat_of_copies_fields():
    inode = Inode(number=9, size=1234, device_id=5)
    st = stat_of(inode)
    assert st.st_ino == 9
    assert st.st_size == 1234
    assert st.st_dev == 5
    inode.size = 9999  # Stat is a frozen snapshot
    assert st.st_size == 1234
