"""Unit tests for the kernel page cache: coherence, combining, writeback,
eviction — the properties NVCache's design leans on."""

import pytest

from repro.block import SsdDevice
from repro.fs import Ext4
from repro.kernel import PageCache, PAGE_SIZE
from repro.units import MIB

from .conftest import run


@pytest.fixture
def setup(env):
    ssd = SsdDevice(env, size=256 * MIB)
    fs = Ext4(env, ssd)
    cache = PageCache(env)
    inode = fs.create("/f")
    return ssd, fs, cache, inode


def test_read_after_write_coherence(env, setup):
    _ssd, fs, cache, inode = setup

    def body():
        yield from cache.write(fs, inode, 10, b"hello")
        data = yield from cache.read(fs, inode, 10, 5)
        return data

    assert run(env, body()) == b"hello"


def test_write_does_not_touch_device(env, setup):
    ssd, fs, cache, inode = setup

    def body():
        yield from cache.write(fs, inode, 0, b"x" * PAGE_SIZE)

    run(env, body())
    assert ssd.stats.writes == 0
    assert cache.dirty_page_count(fs, inode) == 1


def test_fsync_writes_dirty_pages_and_commits(env, setup):
    ssd, fs, cache, inode = setup

    def body():
        yield from cache.write(fs, inode, 0, b"a" * PAGE_SIZE)
        yield from cache.write(fs, inode, PAGE_SIZE, b"b" * PAGE_SIZE)
        yield from cache.fsync(fs, inode)

    run(env, body())
    # 2 data pages + 1 journal commit record
    assert ssd.stats.writes == 3
    assert ssd.stats.flushes == 1
    assert cache.dirty_page_count(fs, inode) == 0


def test_write_combining_one_device_write_per_page(env, setup):
    """The effect behind the paper's batching gains (Fig 6): many small
    writes to the same page produce ONE device write at fsync."""
    ssd, fs, cache, inode = setup

    def body():
        for i in range(32):
            yield from cache.write(fs, inode, i * 128, b"w" * 128)
        yield from cache.fsync(fs, inode)

    run(env, body())
    # 32 x 128B = one 4 KiB page -> 1 data write + 1 journal record
    assert ssd.stats.writes == 2
    assert cache.stats.dirty_combines == 31


def test_fsync_only_flushes_that_inode(env, setup):
    ssd, fs, cache, inode = setup
    other = fs.create("/g")

    def body():
        yield from cache.write(fs, inode, 0, b"a" * PAGE_SIZE)
        yield from cache.write(fs, other, 0, b"b" * PAGE_SIZE)
        yield from cache.fsync(fs, inode)

    run(env, body())
    assert cache.dirty_page_count(fs, inode) == 0
    assert cache.dirty_page_count(fs, other) == 1


def test_partial_page_write_preserves_rest(env, setup):
    _ssd, fs, cache, inode = setup

    def body():
        yield from cache.write(fs, inode, 0, b"A" * PAGE_SIZE)
        yield from cache.fsync(fs, inode)
        cache.crash()  # drop the cache: force a re-read from the device
        yield from cache.write(fs, inode, 100, b"B" * 10)
        data = yield from cache.read(fs, inode, 0, PAGE_SIZE)
        return data

    data = run(env, body())
    assert data[:100] == b"A" * 100
    assert data[100:110] == b"B" * 10
    assert data[110:] == b"A" * (PAGE_SIZE - 110)


def test_read_clipped_at_size(env, setup):
    _ssd, fs, cache, inode = setup

    def body():
        yield from cache.write(fs, inode, 0, b"12345")
        data = yield from cache.read(fs, inode, 0, PAGE_SIZE)
        return data

    assert run(env, body()) == b"12345"


def test_read_past_eof_empty(env, setup):
    _ssd, fs, cache, inode = setup

    def body():
        yield from cache.write(fs, inode, 0, b"12345")
        data = yield from cache.read(fs, inode, 100, 10)
        return data

    assert run(env, body()) == b""


def test_hit_miss_stats(env, setup):
    _ssd, fs, cache, inode = setup

    def body():
        yield from cache.write(fs, inode, 0, b"z" * PAGE_SIZE)
        yield from cache.read(fs, inode, 0, 10)  # hit
        yield from cache.fsync(fs, inode)
        cache.crash()
        yield from cache.read(fs, inode, 0, 10)  # miss

    run(env, body())
    assert cache.stats.hits >= 1
    assert cache.stats.misses >= 1


def test_eviction_under_pressure(env):
    ssd = SsdDevice(env, size=256 * MIB)
    fs = Ext4(env, ssd)
    cache = PageCache(env, capacity_pages=8)
    inode = fs.create("/big")

    def body():
        for i in range(32):
            yield from cache.write(fs, inode, i * PAGE_SIZE, b"e" * PAGE_SIZE)
        # Everything is dirty, so eviction had to write back old pages.
        data = yield from cache.read(fs, inode, 0, PAGE_SIZE)
        return data

    data = run(env, body())
    assert data == b"e" * PAGE_SIZE
    assert cache.cached_page_count() <= 9
    assert cache.stats.evictions >= 24


def test_writeback_pass_cleans_without_barrier(env, setup):
    ssd, fs, cache, inode = setup

    def body():
        yield from cache.write(fs, inode, 0, b"w" * PAGE_SIZE)
        yield from cache.writeback_pass()

    run(env, body())
    assert cache.dirty_page_count() == 0
    assert ssd.stats.writes == 1
    assert ssd.stats.flushes == 0  # no barrier: plain writeback


def test_writeback_daemon_cleans_aged_pages(env, setup):
    _ssd, fs, cache, inode = setup
    cache.writeback_interval = 1.0
    cache.start_writeback_daemon()

    def body():
        yield from cache.write(fs, inode, 0, b"d" * PAGE_SIZE)
        yield env.timeout(3.0)
        return cache.dirty_page_count()

    assert run(env, body()) == 0


def test_crash_drops_everything(env, setup):
    _ssd, fs, cache, inode = setup

    def body():
        yield from cache.write(fs, inode, 0, b"gone" * 1024)

    run(env, body())
    cache.crash()
    assert cache.cached_page_count() == 0
    assert cache.dirty_page_count() == 0


def test_fsync_writes_pages_in_ascending_order(env, setup):
    ssd, fs, cache, inode = setup
    order = []
    original = fs.write_page

    def spy(inode_arg, index, data):
        order.append(index)
        return original(inode_arg, index, data)

    fs.write_page = spy

    def body():
        for index in (5, 1, 3, 2, 4):
            yield from cache.write(fs, inode, index * PAGE_SIZE, b"o" * PAGE_SIZE)
        yield from cache.fsync(fs, inode)

    run(env, body())
    assert order == sorted(order)
