"""Property tests: the page cache + filesystem must behave like a plain
byte buffer under arbitrary operation sequences, with eviction pressure,
writeback, fsync, and crashes at fsync boundaries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block import SsdDevice
from repro.fs import Ext4
from repro.kernel import Kernel, O_CREAT, O_RDWR, PageCache
from repro.sim import Environment
from repro.units import MIB


def build(capacity_pages=8):
    env = Environment()
    ssd = SsdDevice(env, size=128 * MIB)
    kernel = Kernel(env, page_cache=PageCache(env, capacity_pages=capacity_pages))
    kernel.mount("/", Ext4(env, ssd))
    return env, kernel, ssd


ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 60_000),
                  st.binary(min_size=1, max_size=9000)),
        st.tuples(st.just("read"), st.integers(0, 70_000),
                  st.integers(1, 9000)),
        st.tuples(st.just("fsync"), st.none(), st.none()),
        st.tuples(st.just("writeback"), st.none(), st.none()),
    ),
    min_size=1, max_size=30,
)


@settings(max_examples=30, deadline=None)
@given(ops=ops)
def test_page_cache_matches_buffer_under_eviction(ops):
    """Tiny cache (8 pages) forces constant eviction; semantics must not
    change."""
    env, kernel, _ssd = build(capacity_pages=8)
    model = bytearray()

    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_RDWR)
        for op, a, b in ops:
            if op == "write":
                yield from kernel.pwrite(fd, b, a)
                if a + len(b) > len(model):
                    model.extend(b"\x00" * (a + len(b) - len(model)))
                model[a:a + len(b)] = b
            elif op == "read":
                actual = yield from kernel.pread(fd, b, a)
                expected = bytes(model[a:a + b]) if a < len(model) else b""
                assert actual == expected
            elif op == "fsync":
                yield from kernel.fsync(fd)
            elif op == "writeback":
                yield from kernel.page_cache.writeback_pass()
        final = yield from kernel.pread(fd, len(model) + 10, 0)
        assert final == bytes(model)
        return True

    assert env.run_process(body()) is True


@settings(max_examples=25, deadline=None)
@given(
    writes=st.lists(st.tuples(st.integers(0, 30_000),
                              st.binary(min_size=1, max_size=5000)),
                    min_size=1, max_size=12),
    synced_prefix=st.integers(0, 12),
)
def test_fsynced_prefix_survives_crash(writes, synced_prefix):
    """Everything written before the last fsync survives a crash;
    nothing is torn at sub-page granularity within the synced prefix."""
    env, kernel, ssd = build(capacity_pages=64)
    synced_prefix = min(synced_prefix, len(writes))

    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_RDWR)
        for offset, data in writes[:synced_prefix]:
            yield from kernel.pwrite(fd, data, offset)
        yield from kernel.fsync(fd)
        for offset, data in writes[synced_prefix:]:
            yield from kernel.pwrite(fd, data, offset)
        # crash here

    env.run_process(body())
    kernel.crash()
    ssd.crash()

    expected = bytearray()
    for offset, data in writes[:synced_prefix]:
        if offset + len(data) > len(expected):
            expected.extend(b"\x00" * (offset + len(data) - len(expected)))
        expected[offset:offset + len(data)] = data

    def check():
        fd = yield from kernel.open("/f", O_CREAT | O_RDWR)
        data = yield from kernel.pread(fd, len(expected) + 10, 0)
        return data

    recovered = env.run_process(check())
    # The inode size may exceed the synced prefix (metadata survives in
    # our model), but every byte of the synced prefix must be intact.
    assert recovered[:len(expected)] == bytes(expected)
