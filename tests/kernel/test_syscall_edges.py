"""Edge-case coverage for the syscall layer and the writeback machinery."""

import pytest

from repro.block import SsdDevice
from repro.fs import Ext4, Tmpfs
from repro.kernel import (
    Kernel,
    KernelError,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    SEEK_SET,
)
from repro.kernel.errno import EEXIST, EINVAL, EISDIR, ENOENT, ENOTEMPTY
from repro.sim import Environment
from repro.units import MIB

from .conftest import run


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def kernel(env):
    k = Kernel(env)
    k.mount("/", Ext4(env, SsdDevice(env, size=256 * MIB)))
    return k


def test_open_directory_for_writing_fails(env, kernel):
    def body():
        yield from kernel.mkdir("/dir")
        yield from kernel.open("/dir", O_WRONLY)

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == EISDIR


def test_mkdir_existing_fails(env, kernel):
    def body():
        yield from kernel.mkdir("/dir")
        yield from kernel.mkdir("/dir")

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == EEXIST


def test_unlink_nonempty_directory_fails(env, kernel):
    def body():
        yield from kernel.mkdir("/dir")
        fd = yield from kernel.open("/dir/file", O_CREAT | O_WRONLY)
        yield from kernel.close(fd)
        yield from kernel.unlink("/dir")

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == ENOTEMPTY


def test_unlink_empty_directory_succeeds(env, kernel):
    def body():
        yield from kernel.mkdir("/dir")
        yield from kernel.unlink("/dir")
        names = yield from kernel.listdir("/")
        return names

    assert "dir" not in run(env, body())


def test_rename_replaces_existing_target(env, kernel):
    def body():
        fd = yield from kernel.open("/new", O_CREAT | O_WRONLY)
        yield from kernel.write(fd, b"new content")
        yield from kernel.close(fd)
        fd = yield from kernel.open("/old", O_CREAT | O_WRONLY)
        yield from kernel.write(fd, b"old content")
        yield from kernel.close(fd)
        yield from kernel.rename("/new", "/old")
        fd = yield from kernel.open("/old", O_RDONLY)
        data = yield from kernel.read(fd, 64)
        return data

    assert run(env, body()) == b"new content"


def test_rename_missing_source_fails(env, kernel):
    def body():
        yield from kernel.rename("/ghost", "/anything")

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == ENOENT


def test_cross_filesystem_rename_rejected(env, kernel):
    kernel.mount("/tmp", Tmpfs(env))

    def body():
        fd = yield from kernel.open("/file", O_CREAT | O_WRONLY)
        yield from kernel.close(fd)
        yield from kernel.rename("/file", "/tmp/file")

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == EINVAL


def test_pread_negative_offset_rejected(env, kernel):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_RDWR)
        yield from kernel.pread(fd, 4, -1)

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == EINVAL


def test_ftruncate_negative_rejected(env, kernel):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_RDWR)
        yield from kernel.ftruncate(fd, -5)

    with pytest.raises(KernelError):
        run(env, body())


def test_write_empty_buffer(env, kernel):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_RDWR)
        written = yield from kernel.write(fd, b"")
        st = yield from kernel.fstat(fd)
        return written, st.st_size

    assert run(env, body()) == (0, 0)


def test_lseek_beyond_eof_then_write_makes_hole(env, kernel):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_RDWR)
        yield from kernel.lseek(fd, 10000, SEEK_SET)
        yield from kernel.write(fd, b"end")
        data = yield from kernel.pread(fd, 10, 5000)
        st = yield from kernel.fstat(fd)
        return data, st.st_size

    data, size = run(env, body())
    assert data == b"\x00" * 10
    assert size == 10003


def test_sync_flushes_every_filesystem(env, kernel):
    tmp = Tmpfs(env)
    kernel.mount("/tmp", tmp)

    def body():
        fd1 = yield from kernel.open("/a", O_CREAT | O_WRONLY)
        yield from kernel.write(fd1, b"x" * 4096)
        fd2 = yield from kernel.open("/tmp/b", O_CREAT | O_WRONLY)
        yield from kernel.write(fd2, b"y" * 4096)
        yield from kernel.sync()
        return kernel.page_cache.dirty_page_count()

    assert run(env, body()) == 0


def test_writeback_daemon_respects_min_age(env, kernel):
    kernel.page_cache.writeback_interval = 0.5
    kernel.page_cache.start_writeback_daemon()

    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_WRONLY)
        yield from kernel.write(fd, b"young" * 1000)
        # Immediately after the write the page is too young to clean.
        yield env.timeout(0.4)
        young_dirty = kernel.page_cache.dirty_page_count()
        yield env.timeout(1.5)
        old_dirty = kernel.page_cache.dirty_page_count()
        return young_dirty, old_dirty

    young_dirty, old_dirty = run(env, body())
    assert young_dirty > 0
    assert old_dirty == 0


def test_page_cache_stats_hits_track_locality(env, kernel):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_RDWR)
        yield from kernel.write(fd, b"z" * 4096)
        for _ in range(10):
            yield from kernel.pread(fd, 100, 0)
        return kernel.page_cache.stats

    stats = run(env, body())
    assert stats.hits >= 10


def test_two_mounts_independent_namespaces(env, kernel):
    kernel.mount("/tmp", Tmpfs(env))

    def body():
        fd = yield from kernel.open("/name", O_CREAT | O_WRONLY)
        yield from kernel.write(fd, b"on ext4")
        yield from kernel.close(fd)
        # Same leaf name on the other filesystem is a different file.
        fd = yield from kernel.open("/tmp/name", O_CREAT | O_WRONLY)
        yield from kernel.write(fd, b"on tmpfs")
        yield from kernel.close(fd)
        fd = yield from kernel.open("/name", O_RDONLY)
        a = yield from kernel.read(fd, 64)
        fd = yield from kernel.open("/tmp/name", O_RDONLY)
        b = yield from kernel.read(fd, 64)
        return a, b

    a, b = run(env, body())
    assert a == b"on ext4"
    assert b == b"on tmpfs"
