"""Integration tests for the syscall layer over Ext4-on-SSD."""

import pytest

from repro.kernel import (
    KernelError,
    O_APPEND,
    O_CREAT,
    O_DIRECT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_SYNC,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)
from repro.kernel.errno import EBADF, EEXIST, ENOENT

from .conftest import run


def test_create_write_read_roundtrip(env, kernel):
    def body():
        fd = yield from kernel.open("/f.txt", O_CREAT | O_RDWR)
        n = yield from kernel.write(fd, b"hello world")
        assert n == 11
        yield from kernel.lseek(fd, 0, SEEK_SET)
        data = yield from kernel.read(fd, 100)
        yield from kernel.close(fd)
        return data

    assert run(env, body()) == b"hello world"


def test_open_missing_without_creat_fails(env, kernel):
    def body():
        yield from kernel.open("/missing", O_RDONLY)

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == ENOENT


def test_open_excl_existing_fails(env, kernel):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_WRONLY)
        yield from kernel.close(fd)
        yield from kernel.open("/f", O_CREAT | O_EXCL | O_WRONLY)

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == EEXIST


def test_read_on_writeonly_fd_fails(env, kernel):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_WRONLY)
        yield from kernel.read(fd, 4)

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == EBADF


def test_write_on_readonly_fd_fails(env, kernel):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_WRONLY)
        yield from kernel.close(fd)
        fd = yield from kernel.open("/f", O_RDONLY)
        yield from kernel.write(fd, b"nope")

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == EBADF


def test_bad_fd(env, kernel):
    def body():
        yield from kernel.read(42, 1)

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == EBADF


def test_pread_pwrite_do_not_move_cursor(env, kernel):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_RDWR)
        yield from kernel.write(fd, b"0123456789")
        yield from kernel.pwrite(fd, b"XX", 2)
        pos = yield from kernel.lseek(fd, 0, SEEK_CUR)
        assert pos == 10
        data = yield from kernel.pread(fd, 10, 0)
        assert data == b"01XX456789"
        pos = yield from kernel.lseek(fd, 0, SEEK_CUR)
        assert pos == 10
        return True

    assert run(env, body()) is True


def test_read_past_eof_returns_short(env, kernel):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_RDWR)
        yield from kernel.write(fd, b"abc")
        data = yield from kernel.pread(fd, 100, 1)
        assert data == b"bc"
        data = yield from kernel.pread(fd, 100, 3)
        assert data == b""
        data = yield from kernel.pread(fd, 100, 50)
        return data

    assert run(env, body()) == b""


def test_append_mode_always_writes_at_end(env, kernel):
    def body():
        fd = yield from kernel.open("/log", O_CREAT | O_WRONLY | O_APPEND)
        yield from kernel.write(fd, b"one")
        yield from kernel.lseek(fd, 0, SEEK_SET)
        yield from kernel.write(fd, b"two")
        yield from kernel.close(fd)
        fd = yield from kernel.open("/log", O_RDONLY)
        data = yield from kernel.read(fd, 100)
        return data

    assert run(env, body()) == b"onetwo"


def test_trunc_resets_file(env, kernel):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_WRONLY)
        yield from kernel.write(fd, b"old content")
        yield from kernel.close(fd)
        fd = yield from kernel.open("/f", O_WRONLY | O_TRUNC)
        stat = yield from kernel.fstat(fd)
        assert stat.st_size == 0
        yield from kernel.write(fd, b"new")
        yield from kernel.close(fd)
        fd = yield from kernel.open("/f", O_RDONLY)
        data = yield from kernel.read(fd, 100)
        return data

    assert run(env, body()) == b"new"


def test_lseek_whence_modes(env, kernel):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_RDWR)
        yield from kernel.write(fd, b"0123456789")
        assert (yield from kernel.lseek(fd, 4, SEEK_SET)) == 4
        assert (yield from kernel.lseek(fd, 2, SEEK_CUR)) == 6
        assert (yield from kernel.lseek(fd, -3, SEEK_END)) == 7
        return True

    assert run(env, body()) is True


def test_lseek_negative_rejected(env, kernel):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_RDWR)
        yield from kernel.lseek(fd, -5, SEEK_SET)

    with pytest.raises(KernelError):
        run(env, body())


def test_stat_and_fstat(env, kernel):
    def body():
        fd = yield from kernel.open("/data", O_CREAT | O_WRONLY)
        yield from kernel.write(fd, b"x" * 5000)
        st1 = yield from kernel.fstat(fd)
        st2 = yield from kernel.stat("/data")
        return st1, st2

    st1, st2 = run(env, body())
    assert st1.st_size == 5000
    assert st2.st_size == 5000
    assert st1.st_ino == st2.st_ino
    assert st1.st_dev == st2.st_dev


def test_unlink_removes_file(env, kernel):
    def body():
        fd = yield from kernel.open("/gone", O_CREAT | O_WRONLY)
        yield from kernel.close(fd)
        yield from kernel.unlink("/gone")
        yield from kernel.open("/gone", O_RDONLY)

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == ENOENT


def test_rename(env, kernel):
    def body():
        fd = yield from kernel.open("/a", O_CREAT | O_WRONLY)
        yield from kernel.write(fd, b"payload")
        yield from kernel.close(fd)
        yield from kernel.rename("/a", "/b")
        fd = yield from kernel.open("/b", O_RDONLY)
        data = yield from kernel.read(fd, 100)
        return data

    assert run(env, body()) == b"payload"


def test_mkdir_and_nested_files(env, kernel):
    def body():
        yield from kernel.mkdir("/dir")
        yield from kernel.mkdir("/dir/sub")
        fd = yield from kernel.open("/dir/sub/f", O_CREAT | O_WRONLY)
        yield from kernel.write(fd, b"deep")
        yield from kernel.close(fd)
        names = yield from kernel.listdir("/dir/sub")
        return names

    assert run(env, body()) == ["f"]


def test_create_in_missing_dir_fails(env, kernel):
    def body():
        yield from kernel.open("/no/such/dir/f", O_CREAT | O_WRONLY)

    with pytest.raises(KernelError) as exc:
        run(env, body())
    assert exc.value.errno == ENOENT


def test_ftruncate(env, kernel):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_RDWR)
        yield from kernel.write(fd, b"0123456789")
        yield from kernel.ftruncate(fd, 4)
        st = yield from kernel.fstat(fd)
        assert st.st_size == 4
        data = yield from kernel.pread(fd, 100, 0)
        return data

    assert run(env, body()) == b"0123"


def test_fsync_returns_zero(env, kernel):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_WRONLY)
        yield from kernel.write(fd, b"x" * 4096)
        rc = yield from kernel.fsync(fd)
        return rc

    assert run(env, body()) == 0


def test_osync_write_is_durable(env, kernel, ssd):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_WRONLY | O_SYNC)
        yield from kernel.write(fd, b"s" * 4096)
        return None

    run(env, body())
    # The data must have reached the device durably (survives both the
    # page-cache drop and the device-cache drop).
    kernel.crash()
    ssd.crash()

    def check():
        fd = yield from kernel.open("/f", O_RDONLY)
        data = yield from kernel.read(fd, 4096)
        return data

    assert run(env, check()) == b"s" * 4096


def test_buffered_write_lost_on_crash_before_fsync(env, kernel, ssd):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_WRONLY)
        yield from kernel.write(fd, b"v" * 4096)
        return None

    run(env, body())
    kernel.crash()
    ssd.crash()

    def check():
        fd = yield from kernel.open("/f", O_RDONLY)
        data = yield from kernel.read(fd, 4096)
        return data

    data = run(env, check())
    assert data != b"v" * 4096


def test_fsync_makes_write_durable(env, kernel, ssd):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_WRONLY)
        yield from kernel.write(fd, b"d" * 4096)
        yield from kernel.fsync(fd)
        return None

    run(env, body())
    kernel.crash()
    ssd.crash()

    def check():
        fd = yield from kernel.open("/f", O_RDONLY)
        data = yield from kernel.read(fd, 4096)
        return data

    assert run(env, check()) == b"d" * 4096


def test_direct_write_bypasses_page_cache(env, kernel, ssd):
    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_WRONLY | O_DIRECT)
        yield from kernel.write(fd, b"D" * 4096)
        return None

    run(env, body())
    assert kernel.page_cache.dirty_page_count() == 0
    assert ssd.stats.writes >= 1


def test_o_sync_slower_than_buffered(env, kernel):
    def timed(flags, path):
        fd = yield from kernel.open(path, O_CREAT | O_WRONLY | flags)
        start = env.now
        for i in range(20):
            yield from kernel.pwrite(fd, b"w" * 4096, i * 4096)
        return env.now - start

    buffered = run(env, timed(0, "/buffered"))
    sync = run(env, timed(O_SYNC, "/sync"))
    assert sync > 10 * buffered


def test_flock_tracks_lock_state(env, kernel):
    from repro.kernel import LOCK_EX, LOCK_UN

    def body():
        fd = yield from kernel.open("/f", O_CREAT | O_RDWR)
        yield from kernel.flock(fd, LOCK_EX)
        open_file = kernel.fds.get(fd)
        assert open_file.locks
        yield from kernel.flock(fd, LOCK_UN)
        return open_file.locks

    assert run(env, body()) == set()


def test_syscall_costs_time(env, kernel):
    def body():
        start = env.now
        fd = yield from kernel.open("/f", O_CREAT | O_WRONLY)
        yield from kernel.close(fd)
        return env.now - start

    assert run(env, body()) >= 2 * kernel.cpu.syscall
