"""Unit tests for path normalization and the mount table."""

import pytest

from repro.fs import Ext4, Tmpfs
from repro.block import RamDisk
from repro.kernel import KernelError, Vfs, normalize
from repro.sim import Environment
from repro.units import MIB


def test_normalize_basic():
    assert normalize("/a/b/c") == "/a/b/c"
    assert normalize("a/b") == "/a/b"
    assert normalize("/a//b/") == "/a/b"
    assert normalize("/a/./b") == "/a/b"
    assert normalize("/a/b/../c") == "/a/c"
    assert normalize("/") == "/"
    assert normalize("/../..") == "/"


def _two_fs():
    env = Environment()
    root = Ext4(env, RamDisk(env, size=256 * MIB))
    mnt = Tmpfs(env)
    vfs = Vfs()
    vfs.mount("/", root)
    vfs.mount("/mnt/tmp", mnt)
    return vfs, root, mnt


def test_resolve_prefers_longest_mount():
    vfs, root, mnt = _two_fs()
    fs, rel = vfs.resolve("/mnt/tmp/file")
    assert fs is mnt
    assert rel == "/file"
    fs, rel = vfs.resolve("/mnt/other/file")
    assert fs is root
    assert rel == "/mnt/other/file"


def test_resolve_mountpoint_itself():
    vfs, _root, mnt = _two_fs()
    fs, rel = vfs.resolve("/mnt/tmp")
    assert fs is mnt
    assert rel == "/"


def test_double_mount_rejected():
    vfs, root, _ = _two_fs()
    with pytest.raises(KernelError):
        vfs.mount("/mnt/tmp", root)


def test_unmount():
    vfs, root, _mnt = _two_fs()
    vfs.unmount("/mnt/tmp")
    fs, _rel = vfs.resolve("/mnt/tmp/file")
    assert fs is root
    with pytest.raises(KernelError):
        vfs.unmount("/mnt/tmp")


def test_resolve_without_root_mount_fails():
    vfs = Vfs()
    with pytest.raises(KernelError):
        vfs.resolve("/anything")


def test_mountpoint_of():
    vfs, root, mnt = _two_fs()
    assert vfs.mountpoint_of(mnt) == "/mnt/tmp"
    assert vfs.mountpoint_of(root) == "/"
    assert vfs.mountpoint_of(object()) is None
