"""Tests for the asynchronous I/O extension (paper §III future work)."""

import pytest

from repro.libc import Aio, EINPROGRESS
from repro.kernel import O_CREAT, O_RDWR, O_WRONLY

from .test_libc import nvcache_stack, plain_stack


def test_aio_write_completes_and_returns_count():
    env, _kernel, libc = plain_stack()
    aio = Aio(libc)

    def body():
        fd = yield from libc.open("/f", O_CREAT | O_RDWR)
        control = aio.aio_write(fd, b"async payload", 0)
        yield from aio.aio_suspend([control])
        assert aio.aio_error(control) == 0
        written = aio.aio_return(control)
        data = yield from libc.pread(fd, 13, 0)
        return written, data

    written, data = env.run_process(body())
    assert written == 13
    assert data == b"async payload"


def test_aio_is_actually_asynchronous():
    """Submission returns before the I/O completes; the caller overlaps
    its own work with the write."""
    env, _kernel, libc = plain_stack()
    aio = Aio(libc)

    def body():
        fd = yield from libc.open("/f", O_CREAT | O_WRONLY)
        start = env.now
        control = aio.aio_write(fd, b"x" * 65536, 0)
        submit_cost = env.now - start
        in_progress = aio.aio_error(control) if not control.done else 0
        yield from aio.aio_suspend([control])
        return submit_cost, in_progress, env.now - start

    submit_cost, in_progress, total = env.run_process(body())
    assert submit_cost == 0.0
    assert in_progress == EINPROGRESS
    assert total > 0


def test_aio_read():
    env, _kernel, libc = plain_stack()
    aio = Aio(libc)

    def body():
        fd = yield from libc.open("/f", O_CREAT | O_RDWR)
        yield from libc.pwrite(fd, b"read me async", 0)
        control = aio.aio_read(fd, 13, 0)
        yield from aio.aio_suspend([control])
        return aio.aio_return(control)

    assert env.run_process(body()) == b"read me async"


def test_aio_many_concurrent_operations():
    env, _kernel, libc = plain_stack()
    aio = Aio(libc)

    def body():
        fd = yield from libc.open("/f", O_CREAT | O_RDWR)
        controls = [aio.aio_write(fd, bytes([65 + i]) * 512, i * 512)
                    for i in range(16)]
        yield from aio.aio_suspend(controls)
        data = yield from libc.pread(fd, 16 * 512, 0)
        return [aio.aio_return(c) for c in controls], data

    counts, data = env.run_process(body())
    assert counts == [512] * 16
    for i in range(16):
        assert data[i * 512:(i + 1) * 512] == bytes([65 + i]) * 512


def test_aio_error_propagates_exception():
    env, _kernel, libc = plain_stack()
    aio = Aio(libc)

    def body():
        control = aio.aio_write(999, b"bad fd", 0)  # EBADF inside
        yield from aio.aio_suspend([control])
        return control

    control = env.run_process(body())
    with pytest.raises(OSError):
        aio.aio_error(control)
    with pytest.raises(OSError):
        aio.aio_return(control)


def test_aio_return_before_completion_rejected():
    env, _kernel, libc = plain_stack()
    aio = Aio(libc)

    def body():
        fd = yield from libc.open("/f", O_CREAT | O_WRONLY)
        control = aio.aio_write(fd, b"pending", 0)
        try:
            aio.aio_return(control)
        except RuntimeError:
            yield from aio.aio_suspend([control])
            return True
        return False

    assert env.run_process(body()) is True


def test_aio_on_nvcache_completion_implies_durability():
    """The extension's bonus under NVCache: a completed async write is
    already durable in the NVMM log."""
    env, _kernel, nvcache, libc = nvcache_stack()
    aio = Aio(libc)

    def body():
        fd = yield from libc.open("/f", O_CREAT | O_WRONLY)
        control = aio.aio_write(fd, b"durable when done", 0)
        yield from aio.aio_suspend([control])
        return aio.aio_return(control)

    assert env.run_process(body()) == 17
    assert nvcache.log.is_committed(0)
    assert nvcache.log.read_data(0) == b"durable when done"


def test_aio_fsync():
    env, kernel, libc = plain_stack()
    aio = Aio(libc)

    def body():
        fd = yield from libc.open("/f", O_CREAT | O_WRONLY)
        yield from libc.write(fd, b"z" * 4096)
        control = aio.aio_fsync(fd)
        yield from aio.aio_suspend([control])
        return kernel.page_cache.dirty_page_count()

    assert env.run_process(body()) == 0
