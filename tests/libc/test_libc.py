"""Tests for the libc facades: passthrough, interposition, stdio."""

import pytest

from repro.block import SsdDevice
from repro.core import Nvcache, NvcacheConfig, NvmmLog
from repro.fs import Ext4
from repro.kernel import Kernel, O_CREAT, O_RDWR, O_WRONLY, SEEK_SET
from repro.libc import Libc, NvcacheLibc, Stdio
from repro.nvmm import NvmmDevice
from repro.sim import Environment
from repro.units import MIB

CFG = NvcacheConfig(log_entries=128, read_cache_pages=16, batch_min=2,
                    batch_max=16, fd_max=32, cleanup_idle_flush=0.01)


def plain_stack():
    env = Environment()
    kernel = Kernel(env)
    kernel.mount("/", Ext4(env, SsdDevice(env, size=128 * MIB)))
    return env, kernel, Libc(kernel)


def nvcache_stack():
    env = Environment()
    kernel = Kernel(env)
    kernel.mount("/", Ext4(env, SsdDevice(env, size=128 * MIB)))
    nvmm = NvmmDevice(env, size=NvmmLog.required_size(CFG))
    nvcache = Nvcache(env, kernel, nvmm, CFG)
    return env, kernel, nvcache, NvcacheLibc(nvcache)


def test_plain_libc_roundtrip():
    env, _kernel, libc = plain_stack()

    def body():
        fd = yield from libc.open("/f", O_CREAT | O_RDWR)
        yield from libc.write(fd, b"plain")
        yield from libc.lseek(fd, 0, SEEK_SET)
        data = yield from libc.read(fd, 5)
        yield from libc.close(fd)
        return data

    assert env.run_process(body()) == b"plain"


def test_apps_run_unmodified_on_both_libcs():
    """The legacy-compatibility claim: the same application code runs on
    stock libc and on NVCache's libc and produces identical results."""

    def application(libc):
        fd = yield from libc.open("/app.db", O_CREAT | O_RDWR)
        yield from libc.pwrite(fd, b"record-1|", 0)
        yield from libc.pwrite(fd, b"record-2|", 9)
        yield from libc.fsync(fd)
        st = yield from libc.fstat(fd)
        data = yield from libc.pread(fd, st.st_size, 0)
        yield from libc.close(fd)
        return data

    env1, _k1, plain = plain_stack()
    plain_result = env1.run_process(application(plain))
    env2, _k2, _nv, nvlibc = nvcache_stack()
    nv_result = env2.run_process(application(nvlibc))
    assert plain_result == nv_result == b"record-1|record-2|"


def test_nvcache_libc_routes_through_cache():
    env, _kernel, nvcache, libc = nvcache_stack()

    def body():
        fd = yield from libc.open("/f", O_CREAT | O_WRONLY)
        yield from libc.write(fd, b"via nvcache")

    env.run_process(body())
    assert nvcache.stats.writes == 1
    assert nvcache.log.is_committed(0)


def test_nvcache_libc_fsync_is_free():
    env, _kernel, nvcache, libc = nvcache_stack()

    def body():
        fd = yield from libc.open("/f", O_CREAT | O_WRONLY)
        yield from libc.write(fd, b"x" * 4096)
        start = env.now
        yield from libc.fsync(fd)
        return env.now - start

    assert env.run_process(body()) == 0.0
    assert nvcache.stats.fsyncs_ignored == 1


def test_plain_libc_fsync_costs_time():
    env, _kernel, libc = plain_stack()

    def body():
        fd = yield from libc.open("/f", O_CREAT | O_WRONLY)
        yield from libc.write(fd, b"x" * 4096)
        start = env.now
        yield from libc.fsync(fd)
        return env.now - start

    assert env.run_process(body()) > 1e-4  # journal commit + disk flush


def test_stdio_buffered_on_plain_libc():
    env, kernel, libc = plain_stack()
    stdio = Stdio(libc)
    assert stdio.buffered is True

    def body():
        stream = yield from stdio.fopen("/s.txt", "w")
        yield from stdio.fwrite(b"tiny", stream)
        # Still buffered in user space: kernel has no data yet.
        st = yield from kernel.stat("/s.txt")
        assert st.st_size == 0
        yield from stdio.fclose(stream)
        st = yield from kernel.stat("/s.txt")
        return st.st_size

    assert env.run_process(body()) == 4


def test_stdio_unbuffered_on_nvcache_libc():
    """Paper Table III: fwrite becomes unbuffered under NVCache."""
    env, _kernel, nvcache, libc = nvcache_stack()
    stdio = Stdio(libc)
    assert stdio.buffered is False

    def body():
        stream = yield from stdio.fopen("/s.txt", "w")
        yield from stdio.fwrite(b"direct", stream)
        return nvcache.stats.writes

    assert env.run_process(body()) == 1  # hit the cache immediately


def test_stdio_fread_fseek_ftell():
    env, _kernel, libc = plain_stack()
    stdio = Stdio(libc)

    def body():
        stream = yield from stdio.fopen("/s.txt", "w+")
        yield from stdio.fwrite(b"0123456789", stream)
        yield from stdio.fseek(stream, 2)
        data = yield from stdio.fread(4, stream)
        pos = yield from stdio.ftell(stream)
        yield from stdio.fclose(stream)
        return data, pos

    data, pos = env.run_process(body())
    assert data == b"2345"
    assert pos == 6


def test_stdio_large_write_flushes_in_chunks():
    env, kernel, libc = plain_stack()
    stdio = Stdio(libc)

    def body():
        stream = yield from stdio.fopen("/big.txt", "w")
        yield from stdio.fwrite(b"z" * 20000, stream)
        st = yield from kernel.stat("/big.txt")
        buffered_tail = 20000 - st.st_size
        yield from stdio.fclose(stream)
        st = yield from kernel.stat("/big.txt")
        return buffered_tail, st.st_size

    buffered_tail, final = env.run_process(body())
    assert 0 < buffered_tail < 8192
    assert final == 20000


def test_stdio_bad_mode_rejected():
    env, _kernel, libc = plain_stack()
    stdio = Stdio(libc)

    def body():
        yield from stdio.fopen("/f", "q")

    with pytest.raises(Exception):
        env.run_process(body())


def test_stdio_append_mode():
    env, _kernel, libc = plain_stack()
    stdio = Stdio(libc)

    def body():
        stream = yield from stdio.fopen("/log", "a")
        yield from stdio.fwrite(b"first", stream)
        yield from stdio.fclose(stream)
        stream = yield from stdio.fopen("/log", "a")
        yield from stdio.fwrite(b"second", stream)
        yield from stdio.fclose(stream)
        stream = yield from stdio.fopen("/log", "r")
        data = yield from stdio.fread(100, stream)
        yield from stdio.fclose(stream)
        return data

    assert env.run_process(body()) == b"firstsecond"
