"""Unit tests for the NVMM device model."""

import random

import pytest

from repro.nvmm import NvmmDevice, NvmmTiming
from repro.sim import Environment
from repro.units import CACHE_LINE_SIZE


@pytest.fixture
def device():
    return NvmmDevice(Environment(), size=64 * 1024)


def test_store_then_load_sees_data(device):
    device.store(100, b"hello")
    assert device.load(100, 5) == b"hello"


def test_store_is_not_persistent_until_flushed(device):
    device.store(0, b"volatile!")
    assert device.persisted_view()[:9] == b"\x00" * 9


def test_pwb_alone_is_not_persistent(device):
    device.store(0, b"queued")
    device.pwb(0)
    assert device.persisted_view()[:6] == b"\x00" * 6


def test_pwb_pfence_persists(device):
    device.store(0, b"durable")
    device.pwb(0)
    device.pfence()
    assert device.persisted_view()[:7] == b"durable"


def test_psync_persists_and_costs_time():
    env = Environment()
    device = NvmmDevice(env, size=4096)

    def body(env):
        device.store(0, b"x" * 128)
        device.pwb_range(0, 128)
        yield from device.psync()
        return env.now

    elapsed = env.run_process(body(env))
    assert elapsed > 0
    assert device.persisted_view()[:128] == b"x" * 128


def test_pfence_only_flushes_queued_lines(device):
    device.store(0, b"aaaa")
    device.store(CACHE_LINE_SIZE, b"bbbb")
    device.pwb(0)  # only the first line
    device.pfence()
    view = device.persisted_view()
    assert view[:4] == b"aaaa"
    assert view[CACHE_LINE_SIZE:CACHE_LINE_SIZE + 4] == b"\x00" * 4


def test_pwb_range_covers_straddling_lines(device):
    start = CACHE_LINE_SIZE - 2
    device.store(start, b"spanning")
    device.pwb_range(start, 8)
    device.pfence()
    assert device.persisted_view()[start:start + 8] == b"spanning"


def test_store_straddles_many_lines(device):
    data = bytes(range(256)) * 2
    device.store(10, data)
    assert device.load(10, len(data)) == data


def test_out_of_bounds_store_rejected(device):
    with pytest.raises(ValueError):
        device.store(device.size - 2, b"toolong")


def test_out_of_bounds_load_rejected(device):
    with pytest.raises(ValueError):
        device.load(device.size, 1)


def test_negative_address_rejected(device):
    with pytest.raises(ValueError):
        device.store(-1, b"x")


def test_crash_image_drops_unflushed(device):
    device.store(0, b"flushed")
    device.pwb_range(0, 7)
    device.pfence()
    device.store(1024, b"lost")
    image = device.crash_image()
    assert image[:7] == b"flushed"
    assert image[1024:1028] == b"\x00" * 4


def test_crash_image_random_eviction_may_keep_dirty(device):
    device.store(0, b"dirty")
    rng = random.Random(1)
    image = device.crash_image(rng=rng, eviction_probability=1.0)
    assert image[:5] == b"dirty"


def test_crash_image_keep_lines_keeps_exactly_those_lines(device):
    device.store(0 * CACHE_LINE_SIZE, b"AAAA")
    device.store(1 * CACHE_LINE_SIZE, b"BBBB")
    device.store(2 * CACHE_LINE_SIZE, b"CCCC")
    image = device.crash_image(keep_lines={0, 2})
    assert image[0:4] == b"AAAA"
    assert image[CACHE_LINE_SIZE:CACHE_LINE_SIZE + 4] == b"\x00" * 4
    assert image[2 * CACHE_LINE_SIZE:2 * CACHE_LINE_SIZE + 4] == b"CCCC"


def test_crash_image_keep_lines_ignores_clean_lines(device):
    """keep_lines is intersected with the dirty set: naming a flushed or
    never-written line neither duplicates nor corrupts it."""
    device.store(0, b"flushed")
    device.pwb_range(0, 7)
    device.pfence()
    device.store(CACHE_LINE_SIZE, b"dirty")
    image = device.crash_image(keep_lines={0, 1, 500})
    assert image[:7] == b"flushed"
    assert image[CACHE_LINE_SIZE:CACHE_LINE_SIZE + 5] == b"dirty"


def test_crash_image_empty_keep_lines_is_the_pure_power_cut(device):
    device.store(0, b"gone")
    image = device.crash_image(keep_lines=())
    assert image[:4] == b"\x00" * 4
    assert image == device.crash_image()


def test_crash_image_rejects_rng_combined_with_keep_lines(device):
    with pytest.raises(ValueError):
        device.crash_image(rng=random.Random(0), keep_lines={0})


def test_from_image_roundtrip():
    env = Environment()
    device = NvmmDevice(env, size=4096)
    device.store(0, b"persisted")
    device.pwb_range(0, 9)
    device.pfence()
    image = device.crash_image()
    recovered = NvmmDevice.from_image(Environment(), image)
    assert recovered.load(0, 9) == b"persisted"
    assert recovered.dirty_line_count() == 0


def test_from_image_size_mismatch_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        NvmmDevice(env, size=100, media=bytearray(50))


def test_timed_load_returns_data_and_charges_time():
    env = Environment()
    device = NvmmDevice(env, size=4096)
    device.store(8, b"timed")
    device.pwb_range(8, 5)
    device.pfence()

    def body(env):
        data = yield from device.timed_load(8, 5)
        return data, env.now

    data, elapsed = env.run_process(body(env))
    assert data == b"timed"
    assert elapsed >= device.timing.read_latency


def test_timed_store_charges_bandwidth():
    env = Environment()
    timing = NvmmTiming(write_bandwidth=1024)  # 1 KiB/s: easy math
    device = NvmmDevice(env, size=4096, timing=timing)

    def body(env):
        yield from device.timed_store(0, b"x" * 512)
        return env.now

    assert env.run_process(body(env)) == pytest.approx(0.5)


def test_stats_counters(device):
    device.store(0, b"abc")
    device.load(0, 3)
    device.pwb(0)
    device.pfence()
    assert device.stats.stores == 1
    assert device.stats.loads == 1
    assert device.stats.pwbs == 1
    assert device.stats.pfences == 1
    assert device.stats.lines_persisted == 1
