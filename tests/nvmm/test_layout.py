"""Unit tests for persistent layout helpers."""

import pytest

from repro.nvmm import (
    NvmmDevice,
    RegionAllocator,
    align_up,
    read_cstring,
    read_i64,
    read_u64,
    write_cstring,
    write_i64,
    write_u64,
)
from repro.sim import Environment
from repro.units import CACHE_LINE_SIZE


@pytest.fixture
def device():
    return NvmmDevice(Environment(), size=8 * 1024)


def test_align_up():
    assert align_up(0, 64) == 0
    assert align_up(1, 64) == 64
    assert align_up(64, 64) == 64
    assert align_up(65, 64) == 128


def test_align_up_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        align_up(10, 48)


def test_u64_roundtrip(device):
    write_u64(device, 128, 2**63 + 17)
    assert read_u64(device, 128) == 2**63 + 17


def test_i64_roundtrip_negative(device):
    write_i64(device, 64, -1)
    assert read_i64(device, 64) == -1


def test_cstring_roundtrip(device):
    write_cstring(device, 256, "/tmp/data.db", 64)
    assert read_cstring(device, 256, 64) == "/tmp/data.db"


def test_cstring_too_long_rejected(device):
    with pytest.raises(ValueError):
        write_cstring(device, 0, "x" * 64, 64)


def test_cstring_empty(device):
    write_cstring(device, 0, "", 16)
    assert read_cstring(device, 0, 16) == ""


def test_allocator_is_aligned(device):
    alloc = RegionAllocator(device)
    a = alloc.allocate("a", 10)
    b = alloc.allocate("b", 100)
    assert a % CACHE_LINE_SIZE == 0
    assert b % CACHE_LINE_SIZE == 0
    assert b >= a + 10


def test_allocator_deterministic(device):
    plan1 = RegionAllocator(device)
    offsets1 = [plan1.allocate(f"r{i}", 100 + i) for i in range(5)]
    device2 = NvmmDevice(Environment(), size=8 * 1024)
    plan2 = RegionAllocator(device2)
    offsets2 = [plan2.allocate(f"r{i}", 100 + i) for i in range(5)]
    assert offsets1 == offsets2


def test_allocator_exhaustion(device):
    alloc = RegionAllocator(device)
    with pytest.raises(MemoryError):
        alloc.allocate("huge", device.size + 1)


def test_allocator_rejects_empty_region(device):
    alloc = RegionAllocator(device)
    with pytest.raises(ValueError):
        alloc.allocate("zero", 0)


def test_allocator_bookkeeping(device):
    alloc = RegionAllocator(device)
    alloc.allocate("a", 128)
    assert alloc.used >= 128
    assert alloc.remaining == device.size - alloc.used
    assert alloc.regions[0][0] == "a"
