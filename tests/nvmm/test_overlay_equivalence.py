"""Equivalence of the flat-overlay NvmmDevice with a per-line reference.

The device shadows the media with one flat sparse overlay plus a dirty
line set. This pits it against the straightforward model it replaced — a
dict of per-cache-line buffers — over randomized operation sequences,
and demands *byte-identical* behaviour: every load, every crash image
(including randomized eviction, which consumes the rng in ascending
line-address order), and every NvmmStats counter.
"""

import random
from dataclasses import asdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvmm import NvmmDevice
from repro.nvmm.device import NvmmStats
from repro.sim import Environment
from repro.units import CACHE_LINE_SIZE

SIZE = 64 * CACHE_LINE_SIZE


class PerLineReference:
    """The pre-optimization model: a volatile bytearray per dirty line."""

    def __init__(self, size: int):
        self.size = size
        self.media = bytearray(size)
        self.lines = {}  # line index -> bytearray(CACHE_LINE_SIZE)
        self.queue = set()
        self.undrained = 0
        self.stats = NvmmStats()

    def _line_view(self, line: int) -> bytearray:
        view = self.lines.get(line)
        if view is None:
            start = line * CACHE_LINE_SIZE
            view = bytearray(self.media[start:start + CACHE_LINE_SIZE])
            self.lines[line] = view
        return view

    def store(self, addr: int, data: bytes) -> None:
        self.stats.stores += 1
        self.stats.bytes_stored += len(data)
        for i, byte in enumerate(data):
            line, offset = divmod(addr + i, CACHE_LINE_SIZE)
            self._line_view(line)[offset] = byte

    def load(self, addr: int, nbytes: int) -> bytes:
        self.stats.loads += 1
        self.stats.bytes_loaded += nbytes
        out = bytearray(nbytes)
        for i in range(nbytes):
            line, offset = divmod(addr + i, CACHE_LINE_SIZE)
            view = self.lines.get(line)
            out[i] = view[offset] if view is not None else self.media[addr + i]
        return bytes(out)

    def pwb(self, addr: int) -> None:
        self.stats.pwbs += 1
        self.queue.add(addr // CACHE_LINE_SIZE)

    def pwb_range(self, addr: int, nbytes: int) -> None:
        first = addr // CACHE_LINE_SIZE
        last = (addr + max(nbytes, 1) - 1) // CACHE_LINE_SIZE
        self.stats.pwbs += last - first + 1
        self.queue.update(range(first, last + 1))

    def pfence(self) -> int:
        self.stats.pfences += 1
        drained = len(self.queue)
        if drained:
            persistable = self.queue & self.lines.keys()
            for line in persistable:
                start = line * CACHE_LINE_SIZE
                self.media[start:start + CACHE_LINE_SIZE] = self.lines.pop(line)
            self.stats.lines_persisted += len(persistable)
            self.queue.clear()
            self.undrained += drained
        return drained

    def psync(self) -> None:
        self.stats.psyncs += 1
        self.pfence()
        self.undrained = 0

    def crash_image(self, rng=None, eviction_probability=0.0) -> bytearray:
        image = bytearray(self.media)
        if rng is not None and eviction_probability > 0.0 and self.lines:
            for line in sorted(self.lines):
                if rng.random() < eviction_probability:
                    start = line * CACHE_LINE_SIZE
                    image[start:start + CACHE_LINE_SIZE] = self.lines[line]
        return image


# One op = (kind, addr, length). Addresses/lengths are drawn so stores
# hit aligned, unaligned, sub-line, and multi-line shapes.
operations = st.lists(
    st.tuples(
        st.sampled_from(["store", "load", "pwb", "pwb_range", "pfence", "psync"]),
        st.integers(min_value=0, max_value=SIZE - 1),
        st.integers(min_value=0, max_value=3 * CACHE_LINE_SIZE),
    ),
    min_size=1,
    max_size=60,
)


def _apply(ops, data_seed):
    env = Environment()
    device = NvmmDevice(env, size=SIZE)
    reference = PerLineReference(SIZE)
    payload_rng = random.Random(data_seed)

    def driver():
        for kind, addr, length in ops:
            length = min(length, SIZE - addr)
            if kind == "store":
                data = bytes(payload_rng.randrange(256) for _ in range(length))
                device.store(addr, data)
                reference.store(addr, data)
            elif kind == "load":
                assert device.load(addr, length) == reference.load(addr, length)
            elif kind == "pwb":
                device.pwb(addr)
                reference.pwb(addr)
            elif kind == "pwb_range":
                device.pwb_range(addr, length)
                reference.pwb_range(addr, length)
            elif kind == "pfence":
                assert device.pfence() == reference.pfence()
            else:
                yield from device.psync()
                reference.psync()
        yield env.timeout(0.0)

    env.run_process(driver())
    return device, reference


@settings(max_examples=60, deadline=None)
@given(ops=operations, data_seed=st.integers(0, 2**16),
       crash_seed=st.integers(0, 2**16))
def test_flat_overlay_matches_per_line_model(ops, data_seed, crash_seed):
    device, reference = _apply(ops, data_seed)

    assert asdict(device.stats) == asdict(reference.stats)
    assert device._undrained_lines == reference.undrained
    assert device.dirty_line_count() == len(reference.lines)

    # Whole-device read-back and persisted state.
    assert device.load(0, SIZE) == reference.load(0, SIZE)
    assert device.persisted_view() == bytes(reference.media)

    # Crash images: the certain cases and the randomized-eviction case,
    # which must consume the rng identically (ascending line order).
    assert device.crash_image() == reference.crash_image()
    assert device.crash_image(random.Random(crash_seed), 1.0) == \
        reference.crash_image(random.Random(crash_seed), 1.0)
    assert device.crash_image(random.Random(crash_seed), 0.5) == \
        reference.crash_image(random.Random(crash_seed), 0.5)
