"""Property-based tests of the NVMM persistence model.

These pin down the contract that NVCache's commit protocol relies on:
data flushed before a fence is ordered before data stored after it.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvmm import NvmmDevice
from repro.sim import Environment
from repro.units import CACHE_LINE_SIZE

SIZE = 16 * 1024

addresses = st.integers(min_value=0, max_value=SIZE - 64)
payloads = st.binary(min_size=1, max_size=64)


@given(addr=addresses, data=payloads)
def test_load_after_store_roundtrip(addr, data):
    device = NvmmDevice(Environment(), size=SIZE)
    device.store(addr, data)
    assert device.load(addr, len(data)) == data


@given(addr=addresses, data=payloads)
def test_flushed_data_survives_crash(addr, data):
    device = NvmmDevice(Environment(), size=SIZE)
    device.store(addr, data)
    device.pwb_range(addr, len(data))
    device.pfence()
    image = device.crash_image()
    assert bytes(image[addr:addr + len(data)]) == data


@given(addr=addresses, data=payloads, seed=st.integers(0, 2**16))
def test_recovered_device_view_is_consistent(addr, data, seed):
    """Any crash image is a mix of old and new at line granularity."""
    device = NvmmDevice(Environment(), size=SIZE)
    device.store(addr, data)
    rng = random.Random(seed)
    image = device.crash_image(rng=rng, eviction_probability=0.5)
    recovered = bytes(image[addr:addr + len(data)])
    # Each cache line either fully kept the store or fully lost it.
    pos = 0
    while pos < len(data):
        line_start = ((addr + pos) // CACHE_LINE_SIZE) * CACHE_LINE_SIZE
        line_end = line_start + CACHE_LINE_SIZE
        chunk = min(len(data) - pos, line_end - (addr + pos))
        got = recovered[pos:pos + chunk]
        assert got in (data[pos:pos + chunk], b"\x00" * chunk)
        pos += chunk


@settings(max_examples=30)
@given(
    writes=st.lists(
        st.tuples(addresses, payloads),
        min_size=1,
        max_size=10,
    )
)
def test_fence_ordering_prefix_durability(writes):
    """If write i is flushed+fenced before write i+1 is issued, a crash
    never shows write i+1 without write i (at non-overlapping addresses)."""
    # Space the writes out so they never overlap.
    device = NvmmDevice(Environment(), size=SIZE)
    spaced = []
    base = 0
    for _addr, data in writes:
        aligned = (base // CACHE_LINE_SIZE + 1) * CACHE_LINE_SIZE
        if aligned + len(data) > SIZE:
            break
        spaced.append((aligned, data))
        base = aligned + len(data) + CACHE_LINE_SIZE
    durable_upto = len(spaced) // 2
    for i, (addr, data) in enumerate(spaced):
        device.store(addr, data)
        if i < durable_upto:
            device.pwb_range(addr, len(data))
            device.pfence()
    image = device.crash_image()
    for i, (addr, data) in enumerate(spaced[:durable_upto]):
        assert bytes(image[addr:addr + len(data)]) == data
