"""Exporter golden-file round-trips.

The golden files under ``tests/obs/golden/`` pin the exact exporter
output for a fixed registry; both exporters are pure functions of
registry state, so any diff is a deliberate format change — update the
goldens by running this file with ``REGEN_GOLDEN=1``.
"""

import json
import os

import pytest

from repro.obs import MetricsRegistry, to_json, to_json_text, to_prometheus_text

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def build_fixed_registry() -> MetricsRegistry:
    """A small registry with deterministic contents, one of each kind."""
    registry = MetricsRegistry()
    registry.counter("block.ssd0.reads", unit="ops",
                     help="read requests served").inc(42)
    registry.counter("block.ssd0.bytes_read", unit="bytes").inc(172032)
    registry.gauge("core.log.occupancy", unit="ratio",
                   help="used / capacity").set(0.625)
    hist = registry.histogram("core.nvcache.write_latency", unit="s",
                              help="app-visible pwrite latency",
                              start=1e-6, factor=2.0, buckets=8)
    for value in (1.5e-6, 3e-6, 3.5e-6, 1e-5, 1e-4):
        hist.observe(value)
    return registry


def check_golden(filename: str, produced: str) -> None:
    path = os.path.join(GOLDEN_DIR, filename)
    if os.environ.get("REGEN_GOLDEN"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w") as handle:
            handle.write(produced)
    with open(path) as handle:
        expected = handle.read()
    assert produced == expected


def test_prometheus_golden():
    check_golden("fixed.prom", to_prometheus_text(build_fixed_registry()))


def test_json_golden():
    check_golden("fixed.json", to_json_text(build_fixed_registry()))


def test_exporters_are_deterministic():
    assert (to_prometheus_text(build_fixed_registry())
            == to_prometheus_text(build_fixed_registry()))
    assert (to_json_text(build_fixed_registry())
            == to_json_text(build_fixed_registry()))


def test_prometheus_histogram_buckets_are_cumulative():
    text = to_prometheus_text(build_fixed_registry())
    counts = []
    for line in text.splitlines():
        if line.startswith("core_nvcache_write_latency_s_bucket"):
            counts.append(int(line.rsplit(" ", 1)[1]))
    assert counts == sorted(counts)
    assert counts[-1] == 5  # +Inf bucket equals total count
    assert 'le="+Inf"' in text


def test_prometheus_units_suffixed_and_dots_flattened():
    text = to_prometheus_text(build_fixed_registry())
    assert "block_ssd0_reads_ops 42" in text
    assert "block_ssd0_bytes_read_bytes 172032" in text
    assert "core_log_occupancy_ratio 0.625" in text
    assert "." not in [line.split(" ")[0] for line in text.splitlines()
                       if line and not line.startswith("#")][0]


def test_json_round_trip_preserves_values():
    registry = build_fixed_registry()
    parsed = json.loads(to_json_text(registry))
    assert parsed == json.loads(json.dumps(to_json(registry)))
    by_name = {m["name"]: m for m in parsed["metrics"]}
    assert by_name["block.ssd0.reads"]["value"] == 42
    hist = by_name["core.nvcache.write_latency"]
    assert hist["count"] == 5
    assert hist["sum"] == pytest.approx(1.18e-4)
    assert sum(b["count"] for b in hist["buckets"]) + hist["overflow"] == 5


def test_empty_registry_exports():
    registry = MetricsRegistry()
    assert to_prometheus_text(registry) == "\n"
    assert to_json(registry) == {"metrics": []}
