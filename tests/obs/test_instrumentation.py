"""The instrumented stacks: every layer registers, values move under a
workload, and metrics stay off (and free) by default."""

import pytest

from repro.block import HddDevice
from repro.harness import Scale, build_stack
from repro.harness.reporting import format_metrics_by_layer, format_metrics_table
from repro.obs import MetricsRegistry
from repro.sim import Environment
from repro.workloads import FioJob, run_fio

SCALE = Scale(4096)


def run_small_job(stack, rw="randwrite", size=64 * 4096, fsync=1):
    job = FioJob(rw=rw, block_size=4096, size=size, fsync=fsync)
    return run_fio(stack.env, stack.libc, job, "/bench.dat",
                   settle=stack.settle)


class TestRegistration:
    def test_metrics_off_by_default(self):
        stack = build_stack("nvcache+ssd", SCALE)
        assert stack.metrics is None
        assert stack.env.metrics is None

    def test_every_layer_registers_at_least_three_metrics(self):
        stack = build_stack("nvcache+ssd", SCALE, metrics=True)
        assert stack.metrics is stack.env.metrics
        for layer in ("nvmm", "block", "kernel", "fs", "core"):
            layer_metrics = list(stack.metrics.collect(layer))
            assert len(layer_metrics) >= 3, layer

    def test_expected_component_prefixes(self):
        stack = build_stack("nvcache+ssd", SCALE, metrics=True)
        names = stack.metrics.names()
        for prefix in ("nvmm.pmem0.", "block.ssd0.", "kernel.page_cache.",
                       "fs.ext4.", "core.nvcache.", "core.log.",
                       "core.cleanup."):
            assert any(name.startswith(prefix) for name in names), prefix

    def test_dm_writecache_registers_device_name_sanitized(self):
        stack = build_stack("dm-writecache+ssd", SCALE, metrics=True)
        names = stack.metrics.names()
        assert "block.dm_writecache.occupancy" in names
        assert "block.dm_writecache.write_latency" in names
        assert not any("-" in name for name in names)

    def test_hdd_self_registers(self):
        env = Environment()
        env.metrics = MetricsRegistry()
        HddDevice(env)
        assert "block.hdd0.write_latency" in env.metrics.names()

    def test_two_stacks_do_not_collide(self):
        # Registries are per-environment: building two instrumented
        # stacks in one process must not raise on re-registration.
        first = build_stack("nvcache+ssd", SCALE, metrics=True)
        second = build_stack("nvcache+ssd", SCALE, metrics=True)
        assert first.metrics is not second.metrics
        assert first.metrics.names() == second.metrics.names()


class TestValuesUnderWorkload:
    def test_write_path_populates_all_layers(self):
        stack = build_stack("nvcache+ssd", SCALE, metrics=True)
        run_small_job(stack)
        snapshot = stack.metrics.snapshot()
        assert snapshot["core.nvcache.writes"] >= 64
        assert snapshot["core.nvcache.write_latency"] >= 64  # histogram count
        assert snapshot["nvmm.pmem0.psyncs"] >= 64
        assert snapshot["core.cleanup.entries_retired"] >= 1
        assert snapshot["block.ssd0.writes"] >= 1
        assert snapshot["fs.ext4.journal_commits"] + \
            snapshot["fs.ext4.fast_commits"] >= 1
        assert snapshot["kernel.page_cache.writeback_pages"] >= 1

    def test_fsyncs_are_free_under_nvcache(self):
        stack = build_stack("nvcache+ssd", SCALE, metrics=True)
        run_small_job(stack)
        assert stack.metrics.snapshot()["core.nvcache.fsyncs_ignored"] >= 64

    def test_read_path_hits_and_latency(self):
        stack = build_stack("nvcache+ssd", SCALE, metrics=True)
        run_small_job(stack, rw="randrw", fsync=0)
        snapshot = stack.metrics.snapshot()
        assert snapshot["core.nvcache.reads"] >= 1
        assert snapshot["core.nvcache.read_latency"] >= 1
        hits, misses = (snapshot["core.nvcache.read_hits"],
                        snapshot["core.nvcache.read_misses"])
        assert hits + misses == snapshot["core.nvcache.reads"]
        if hits + misses:
            assert stack.metrics.get("core.nvcache.hit_ratio").value() \
                == pytest.approx(hits / (hits + misses))

    def test_histogram_percentiles_ordered(self):
        stack = build_stack("nvcache+ssd", SCALE, metrics=True)
        run_small_job(stack)
        latency = stack.metrics.get("core.nvcache.write_latency")
        quantiles = latency.percentiles()
        assert 0 < quantiles["p50"] <= quantiles["p95"] <= quantiles["p99"]
        assert quantiles["p99"] <= latency.max

    def test_fn_backed_metrics_track_legacy_stats(self):
        # The metrics layer wraps the stats dataclasses; both views must
        # agree at all times.
        stack = build_stack("nvcache+ssd", SCALE, metrics=True)
        run_small_job(stack)
        snapshot = stack.metrics.snapshot()
        stats = stack.nvcache.stats
        assert snapshot["core.nvcache.writes"] == stats.writes
        assert snapshot["core.nvcache.read_hits"] == stats.read_hits
        assert snapshot["core.cleanup.batches"] == stats.cleanup_batches
        ssd = stack.devices["ssd"]
        assert snapshot["block.ssd0.writes"] == ssd.stats.writes

    def test_metrics_do_not_change_simulated_results(self):
        # Observability must be semantically invisible: identical
        # simulated clock and stats with metrics on and off.
        plain = build_stack("nvcache+ssd", SCALE)
        run_small_job(plain)
        instrumented = build_stack("nvcache+ssd", SCALE, metrics=True)
        run_small_job(instrumented)
        assert plain.env.now == instrumented.env.now
        assert plain.nvcache.stats.writes == instrumented.nvcache.stats.writes
        assert plain.nvcache.stats.entries_created == \
            instrumented.nvcache.stats.entries_created


class TestReportingIntegration:
    def test_metrics_table_renders_all_kinds(self):
        stack = build_stack("nvcache+ssd", SCALE, metrics=True)
        run_small_job(stack)
        table = format_metrics_table(stack.metrics, prefix="core.nvcache")
        assert "core.nvcache.writes" in table
        assert "histogram" in table and "p99=" in table

    def test_by_layer_sections(self):
        stack = build_stack("nvcache+ssd", SCALE, metrics=True)
        text = format_metrics_by_layer(stack.metrics)
        for layer in ("[nvmm]", "[block]", "[kernel]", "[fs]", "[core]"):
            assert layer in text
