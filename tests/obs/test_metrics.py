"""Counter/Gauge semantics and histogram bucket/quantile math."""

import pytest

from repro.obs import Counter, Gauge, Histogram, sanitize


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("a.b.c")
        assert counter.value() == 0
        counter.inc()
        counter.inc(5)
        assert counter.value() == 6

    def test_rejects_negative_increment(self):
        counter = Counter("a.b.c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_fn_backed_reads_through(self):
        state = {"n": 3}
        counter = Counter("a.b.c", fn=lambda: state["n"])
        assert counter.value() == 3
        state["n"] = 8
        assert counter.value() == 8

    def test_fn_backed_rejects_inc(self):
        counter = Counter("a.b.c", fn=lambda: 0)
        with pytest.raises(ValueError):
            counter.inc()


class TestGauge:
    def test_set_and_read(self):
        gauge = Gauge("a.b.c")
        gauge.set(4.5)
        assert gauge.value() == 4.5
        gauge.set(1.0)  # may go down
        assert gauge.value() == 1.0

    def test_fn_backed_rejects_set(self):
        gauge = Gauge("a.b.c", fn=lambda: 1.0)
        with pytest.raises(ValueError):
            gauge.set(2.0)


class TestHistogramBuckets:
    def test_geometric_bounds(self):
        hist = Histogram("a.b.c", start=1.0, factor=2.0, buckets=4)
        assert hist.bounds == [1.0, 2.0, 4.0, 8.0]
        assert len(hist.counts) == 5  # + overflow

    def test_observation_lands_in_covering_bucket(self):
        # Bucket i covers (bounds[i-1], bounds[i]]: 3.0 -> bucket of 4.0.
        hist = Histogram("a.b.c", start=1.0, factor=2.0, buckets=4)
        hist.observe(3.0)
        assert hist.counts == [0, 0, 1, 0, 0]

    def test_bound_value_is_inclusive(self):
        hist = Histogram("a.b.c", start=1.0, factor=2.0, buckets=4)
        hist.observe(2.0)
        assert hist.counts[1] == 1

    def test_overflow_bucket(self):
        hist = Histogram("a.b.c", start=1.0, factor=2.0, buckets=4)
        hist.observe(100.0)
        assert hist.counts[-1] == 1

    def test_aggregates(self):
        hist = Histogram("a.b.c", start=1.0, factor=2.0, buckets=4)
        for value in (0.5, 2.0, 7.5):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(10.0)
        assert hist.mean == pytest.approx(10.0 / 3)
        assert hist.min == 0.5
        assert hist.max == 7.5

    def test_rejects_negative_observation(self):
        hist = Histogram("a.b.c")
        with pytest.raises(ValueError):
            hist.observe(-1e-9)

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError):
            Histogram("a.b.c", start=0.0)
        with pytest.raises(ValueError):
            Histogram("a.b.c", factor=1.0)
        with pytest.raises(ValueError):
            Histogram("a.b.c", buckets=0)

    def test_default_span_covers_simulated_latencies(self):
        # 100 ns start, x2, 40 buckets: top bound must exceed any
        # latency the simulation can produce (hours of simulated time).
        hist = Histogram("a.b.c")
        assert hist.bounds[0] == pytest.approx(1e-7)
        assert hist.bounds[-1] > 3600


class TestHistogramQuantiles:
    def test_empty_histogram(self):
        hist = Histogram("a.b.c")
        assert hist.quantile(0.5) == 0.0
        assert hist.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_single_sample_reports_the_sample(self):
        # Clamping to observed min/max: one sample must come back
        # exactly, not as a bucket edge.
        hist = Histogram("a.b.c")
        hist.observe(3.3e-5)
        for q in (0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(3.3e-5)

    def test_uniform_samples_median(self):
        hist = Histogram("a.b.c", start=1.0, factor=2.0, buckets=10)
        for i in range(1, 101):
            hist.observe(float(i))
        # Exact median of 1..100 is 50.5; bucket interpolation is
        # coarse (log buckets), so allow the crossing bucket's width.
        assert 32.0 <= hist.quantile(0.5) <= 64.0
        assert hist.quantile(1.0) == 100.0

    def test_quantiles_are_monotonic(self):
        hist = Histogram("a.b.c")
        for i in range(200):
            hist.observe(1e-6 * (1.07 ** i))
        quantiles = [hist.quantile(q / 100) for q in range(1, 101)]
        assert quantiles == sorted(quantiles)
        assert quantiles[-1] == hist.max

    def test_quantile_validates_range(self):
        hist = Histogram("a.b.c")
        with pytest.raises(ValueError):
            hist.quantile(0.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_interpolation_inside_crossing_bucket(self):
        # 4 samples in bucket (1, 2]: p50 crosses at rank 2 of 4 ->
        # lower + (upper-lower) * 2/4 = 1.5, within observed bounds.
        hist = Histogram("a.b.c", start=1.0, factor=2.0, buckets=4)
        for value in (1.2, 1.4, 1.6, 1.8):
            hist.observe(value)
        assert hist.quantile(0.5) == pytest.approx(1.5)

    def test_value_is_count(self):
        hist = Histogram("a.b.c")
        hist.observe(1.0)
        hist.observe(2.0)
        assert hist.value() == 2


def test_sanitize():
    assert sanitize("dm-writecache") == "dm_writecache"
    assert sanitize("PMem0") == "pmem0"
    assert sanitize("a b.c") == "a_b_c"
