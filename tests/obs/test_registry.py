"""Registry naming contract: collisions, malformed names, scopes,
lookup, and snapshots."""

import pytest

from repro.obs import Counter, MetricsRegistry


class TestRegistration:
    def test_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("core.log.entries_created")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("core.log.entries_created")

    def test_collision_rejected_across_kinds(self):
        registry = MetricsRegistry()
        registry.counter("core.log.x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("core.log.x")

    @pytest.mark.parametrize("bad", [
        "reads",                 # no hierarchy
        "block.reads",           # only two segments
        "Block.ssd0.reads",      # uppercase
        "block.ssd-0.reads",     # unsanitized dash
        "block..reads",          # empty segment
        "block.ssd0.reads ",     # trailing space
    ])
    def test_malformed_name_rejected(self, bad):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter(bad)

    def test_register_returns_the_metric(self):
        registry = MetricsRegistry()
        counter = registry.register(Counter("a.b.c"))
        assert registry.get("a.b.c") is counter

    def test_deep_hierarchies_allowed(self):
        registry = MetricsRegistry()
        registry.counter("core.nvcache.read_cache.clock.hand_sweeps")


class TestScope:
    def test_scope_prefixes_every_kind(self):
        registry = MetricsRegistry()
        scope = registry.scope("block.ssd0")
        scope.counter("reads")
        scope.gauge("queue_depth")
        scope.histogram("read_latency")
        assert registry.names() == [
            "block.ssd0.queue_depth",
            "block.ssd0.read_latency",
            "block.ssd0.reads",
        ]

    def test_scope_collision_still_rejected(self):
        registry = MetricsRegistry()
        registry.scope("block.ssd0").counter("reads")
        with pytest.raises(ValueError, match="already registered"):
            registry.scope("block.ssd0").counter("reads")


class TestLookup:
    def test_get_has_dict_get_semantics(self):
        registry = MetricsRegistry()
        assert registry.get("no.such.metric") is None
        assert registry.get("no.such.metric", 7) == 7

    def test_collect_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("block.ssd0.reads")
        registry.counter("block.hdd0.reads")
        registry.counter("core.log.full_waits")
        assert [m.name for m in registry.collect("block")] == [
            "block.hdd0.reads", "block.ssd0.reads"]
        assert [m.name for m in registry.collect("block.ssd0")] == [
            "block.ssd0.reads"]

    def test_prefix_does_not_match_partial_segment(self):
        registry = MetricsRegistry()
        registry.counter("block.ssd0.reads")
        registry.counter("blocked.x.y")
        assert [m.name for m in registry.collect("block")] == [
            "block.ssd0.reads"]

    def test_layers(self):
        registry = MetricsRegistry()
        registry.counter("block.ssd0.reads")
        registry.counter("core.log.full_waits")
        registry.counter("nvmm.pmem0.psyncs")
        assert registry.layers() == ["block", "core", "nvmm"]


class TestSnapshots:
    def test_snapshot_scalars(self):
        registry = MetricsRegistry()
        registry.counter("a.b.counter").inc(3)
        registry.gauge("a.b.gauge").set(1.5)
        hist = registry.histogram("a.b.hist")
        hist.observe(1e-5)
        hist.observe(2e-5)
        assert registry.snapshot() == {
            "a.b.counter": 3, "a.b.gauge": 1.5, "a.b.hist": 2}

    def test_snapshot_detailed_histograms(self):
        registry = MetricsRegistry()
        hist = registry.histogram("a.b.hist")
        hist.observe(4e-6)
        detail = registry.snapshot_detailed()["a.b.hist"]
        assert detail["count"] == 1
        assert detail["min"] == detail["max"] == pytest.approx(4e-6)
        assert detail["p99"] == pytest.approx(4e-6)
