"""Sampler cadence under simulated time, series extraction, rates."""

import pytest

from repro.obs import MetricsRegistry, Sampler
from repro.sim import Environment


def make_env_registry():
    env = Environment()
    registry = MetricsRegistry()
    env.metrics = registry
    return env, registry


def test_cadence_is_exact_simulated_time():
    env, registry = make_env_registry()
    registry.gauge("a.b.gauge", fn=lambda: env.now)
    sampler = Sampler(env, registry, period=0.25).start()

    def workload():
        yield env.timeout(1.0)

    env.run_process(workload())
    # First sample at now+period; the 1.0 s tick ties with the fourth
    # sample, and whether it lands is scheduling-order detail — pin the
    # first three exactly.
    times = [when for when, _ in sampler.samples]
    assert times[:3] == pytest.approx([0.25, 0.50, 0.75])
    assert len(times) >= 3


def test_samples_record_current_values():
    env, registry = make_env_registry()
    counter = registry.counter("a.b.events")

    def workload():
        for _ in range(4):
            counter.inc(10)
            yield env.timeout(1.0)

    sampler = Sampler(env, registry, period=1.0).start()
    env.run_process(workload())
    times, values = sampler.series("a.b.events")
    assert values[0] == 10
    assert values == sorted(values)  # counter is monotonic
    assert values[-1] == 40


def test_stop_halts_sampling():
    env, registry = make_env_registry()
    registry.counter("a.b.events")
    sampler = Sampler(env, registry, period=0.1).start()

    def workload():
        yield env.timeout(0.35)
        sampler.stop()
        yield env.timeout(1.0)

    env.run_process(workload())
    assert all(when <= 0.45 for when, _ in sampler.samples)


def test_determinism_same_workload_same_samples():
    def run_once():
        env, registry = make_env_registry()
        counter = registry.counter("a.b.events")

        def workload():
            for i in range(10):
                counter.inc(i)
                yield env.timeout(0.13)

        sampler = Sampler(env, registry, period=0.2).start()
        env.run_process(workload())
        return sampler.samples

    assert run_once() == run_once()


def test_names_filter_restricts_snapshot():
    env, registry = make_env_registry()
    registry.counter("a.b.wanted").inc(2)
    registry.counter("a.b.unwanted").inc(9)
    sampler = Sampler(env, registry, period=0.1, names=["a.b.wanted"])
    sampler.start()

    def workload():
        yield env.timeout(0.25)

    env.run_process(workload())
    for _when, snapshot in sampler.samples:
        assert set(snapshot) == {"a.b.wanted"}


def test_rate_series_differentiates_counters():
    env, registry = make_env_registry()
    counter = registry.counter("a.b.events")

    def workload():
        for _ in range(4):
            counter.inc(100)
            yield env.timeout(1.0)

    sampler = Sampler(env, registry, period=1.0).start()
    env.run_process(workload())
    times, rates = sampler.rate_series("a.b.events")
    # 100 events per 1 s interval -> constant rate 100/s, including the
    # first sample (rated against time zero).
    assert rates == pytest.approx([100.0] * len(rates))
    assert len(rates) >= 3


def test_sample_now_without_start():
    env, registry = make_env_registry()
    registry.gauge("a.b.gauge").set(7.0)
    sampler = Sampler(env, registry, period=1.0)
    when, snapshot = sampler.sample_now()
    assert when == 0.0
    assert snapshot["a.b.gauge"] == 7.0


def test_rejects_nonpositive_period():
    env, registry = make_env_registry()
    with pytest.raises(ValueError):
        Sampler(env, registry, period=0.0)
