"""Request tracing: causal span trees, critical-path attribution,
exemplars, sampling — and the hard guarantee that none of it changes
simulated results."""

import json
import os

import pytest

from repro.harness import Scale, build_stack
from repro.harness.systems import nvcache_config
from repro.kernel import O_CREAT, O_RDWR, O_WRONLY
from repro.parallel import SweepSpec, make_explorer
from repro.workloads import FioJob, run_fio

SCALE = Scale(4096)
GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "pwrite_fsync_trace.json")


def run_small_job(stack, rw="randwrite", size=64 * 4096, fsync=1):
    job = FioJob(rw=rw, block_size=4096, size=size, fsync=fsync)
    return run_fio(stack.env, stack.libc, job, "/bench.dat",
                   settle=stack.settle)


def single_pwrite_fsync(stack):
    def body():
        fd = yield from stack.libc.open("/f", O_CREAT | O_WRONLY)
        yield from stack.libc.pwrite(fd, b"x" * 4096, 0)
        yield from stack.libc.fsync(fd)
    stack.env.run_process(body())


class TestSpanTrees:
    def test_tracing_off_by_default(self):
        stack = build_stack("nvcache+ssd", SCALE)
        assert stack.tracer is None
        assert stack.env.tracer is None

    def test_pwrite_fsync_is_one_causal_tree(self):
        stack = build_stack("nvcache+ssd", SCALE, tracing=True)
        single_pwrite_fsync(stack)
        tracer = stack.tracer
        (pwrite,) = [s for s in tracer.roots() if s.qualified == "libc.pwrite"]
        children = {s.qualified: s for s in tracer.spans
                    if s.parent_id == pwrite.span_id}
        assert set(children) == {"core.log_append", "core.commit"}
        commit = children["core.commit"]
        grand = [s for s in tracer.spans if s.parent_id == commit.span_id]
        assert [s.qualified for s in grand] == ["nvmm.psync"]
        # Everything belongs to the pwrite's single trace.
        assert {s.trace_id for s in [pwrite] + list(children.values()) + grand} \
            == {pwrite.trace_id}

    def test_root_segments_sum_to_duration(self):
        # The acceptance criterion: critical-path segments decompose the
        # exact end-to-end latency of every completed root span.
        stack = build_stack("nvcache+ssd", SCALE, tracing=True)
        single_pwrite_fsync(stack)
        for root in stack.tracer.roots():
            assert sum(root.segments.values()) == pytest.approx(
                root.duration, abs=1e-15), root.qualified

    def test_matches_golden_chrome_export(self):
        # Pinned end-to-end: one pwrite+fsync exports this exact Perfetto
        # JSON (metadata, spans, segments, flow events, tids). After an
        # intentional change, regenerate with REGEN_GOLDEN=1.
        stack = build_stack("nvcache+ssd", SCALE, tracing=True)
        single_pwrite_fsync(stack)
        events = json.loads(json.dumps(stack.tracer.to_chrome_events()))
        if os.environ.get("REGEN_GOLDEN"):
            with open(GOLDEN, "w") as handle:
                json.dump(events, handle, indent=2)
                handle.write("\n")
        with open(GOLDEN) as handle:
            assert events == json.load(handle)

    def test_unknown_span_name_rejected(self):
        stack = build_stack("nvcache+ssd", SCALE, tracing=True)
        with pytest.raises(ValueError):
            stack.tracer.begin(stack.env, "core", "not_a_span")
        with pytest.raises(ValueError):
            stack.tracer.charge(stack.env, "core", "not_a_segment", 1e-6)

    def test_attribution_aggregates_roots(self):
        stack = build_stack("nvcache+ssd", SCALE, tracing=True)
        run_small_job(stack)
        totals = stack.tracer.attribution("libc.pwrite")
        assert totals  # nonempty
        pwrites = [s for s in stack.tracer.roots()
                   if s.qualified == "libc.pwrite"]
        assert sum(totals.values()) == pytest.approx(
            sum(s.duration for s in pwrites), rel=1e-12)


class TestFlowLinks:
    def test_drain_batch_links_back_to_writes(self):
        config = nvcache_config(SCALE, batch_min=1, batch_max=64)
        stack = build_stack("nvcache+ssd", SCALE, config=config,
                            tracing=True)

        def body():
            fd = yield from stack.libc.open("/f", O_CREAT | O_WRONLY)
            for i in range(3):
                yield from stack.libc.pwrite(fd, b"y" * 4096, i * 4096)
            yield stack.nvcache.cleanup.request_drain()

        stack.env.run_process(body())
        tracer = stack.tracer
        batches = [s for s in tracer.spans if s.qualified == "core.drain_batch"]
        assert batches
        linked_from = {span_id for batch in batches
                       for _trace, span_id, _time, _track in batch.links}
        pwrite_ids = {s.span_id for s in tracer.roots()
                      if s.qualified == "libc.pwrite"}
        assert linked_from and linked_from <= pwrite_ids
        # The export renders each link as a flow start/finish pair.
        events = tracer.to_chrome_events()
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == len(linked_from)


class TestSampling:
    def test_head_sampling_keeps_whole_trees(self):
        stack = build_stack("nvcache+ssd", SCALE, tracing=True,
                            trace_sample_rate=0.3, trace_seed=7)
        run_small_job(stack)
        full = build_stack("nvcache+ssd", SCALE, tracing=True)
        run_small_job(full)
        assert 0 < len(stack.tracer.roots()) < len(full.tracer.roots())
        # Children never outlive their root's sampling decision.
        root_ids = {s.trace_id for s in stack.tracer.roots()}
        assert {s.trace_id for s in stack.tracer.spans} == root_ids

    def test_sampling_is_deterministic(self):
        def recorded():
            stack = build_stack("nvcache+ssd", SCALE, tracing=True,
                                trace_sample_rate=0.3, trace_seed=7)
            run_small_job(stack)
            return [(s.trace_id, s.qualified, s.start, s.duration)
                    for s in stack.tracer.spans]
        assert recorded() == recorded()


class TestDeterminism:
    def test_tracing_does_not_change_simulated_results(self):
        # The pinned guarantee: identical clock and stats with tracing
        # off, on, and head-sampled.
        outcomes = []
        for kwargs in ({}, {"tracing": True},
                       {"tracing": True, "trace_sample_rate": 0.25,
                        "trace_seed": 3}):
            stack = build_stack("nvcache+ssd", SCALE, **kwargs)
            run_small_job(stack)
            outcomes.append((stack.env.now, stack.nvcache.stats.writes,
                             stack.nvcache.stats.entries_created,
                             stack.nvcache.stats.cleanup_batches))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_crash_point_stream_identical_with_tracing(self):
        def points(trace):
            spec = SweepSpec(workload="fio", budget=4, trace=trace)
            explorer = make_explorer(spec)
            return [(p.index, p.time, p.site, p.label, p.dirty_lines)
                    for p in explorer.enumerate_points()]
        assert points(False) == points(True)


class TestExemplars:
    def test_p99_exemplar_resolves_to_recorded_trace(self):
        stack = build_stack("nvcache+ssd", SCALE, metrics=True, tracing=True)
        run_small_job(stack)
        hist = stack.metrics.get("core.nvcache.write_latency")
        exemplar = hist.exemplar_near(0.99)
        assert exemplar is not None
        trace_id, value = exemplar
        recorded = {s.trace_id for s in stack.tracer.roots()}
        assert trace_id in recorded
        assert value > 0

    def test_no_exemplars_without_tracing(self):
        stack = build_stack("nvcache+ssd", SCALE, metrics=True)
        run_small_job(stack)
        hist = stack.metrics.get("core.nvcache.write_latency")
        assert hist.exemplar_near(0.99) is None

    def test_trace_metrics_registered_and_move(self):
        stack = build_stack("nvcache+ssd", SCALE, metrics=True, tracing=True)
        run_small_job(stack)
        snapshot = stack.metrics.snapshot()
        assert snapshot["obs.trace.spans_recorded"] >= 64
        assert snapshot["obs.trace.events_recorded"] >= 1
        assert snapshot["obs.trace.dropped"] == 0
        assert snapshot["obs.trace.spans_open"] == 0


class TestReadPath:
    def test_read_hit_and_miss_spans(self):
        stack = build_stack("nvcache+ssd", SCALE, tracing=True)

        def body():
            fd = yield from stack.libc.open("/f", O_CREAT | O_RDWR)
            yield from stack.libc.pwrite(fd, b"z" * 4096, 0)
            yield from stack.libc.pread(fd, 4096, 0)  # miss, then cached
            yield from stack.libc.pread(fd, 4096, 0)  # hit

        stack.env.run_process(body())
        names = [s.qualified for s in stack.tracer.spans]
        assert "core.read_miss" in names
        assert "core.read_hit" in names
