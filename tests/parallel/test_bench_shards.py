"""The benchmark matrix shard selector must be a deterministic
partition: every cell in exactly one shard, the union is the full
matrix, and the assignment depends only on the collected node ids."""

import os
import subprocess
import sys

from benchmarks.conftest import shard_assignments

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


def test_assignment_is_a_partition():
    ids = [f"benchmarks/test_x.py::test_{i}" for i in range(23)]
    owner = shard_assignments(ids, 4)
    assert set(owner) == set(ids)
    assert set(owner.values()) <= {0, 1, 2, 3}
    sizes = [list(owner.values()).count(s) for s in range(4)]
    assert max(sizes) - min(sizes) <= 1


def test_assignment_ignores_collection_order():
    ids = [f"t::{name}" for name in "dcba"]
    assert shard_assignments(ids, 2) == shard_assignments(sorted(ids), 2)


def collect(*extra):
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks", "--collect-only",
         "-q", *extra],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stdout + result.stderr
    return {line for line in result.stdout.splitlines()
            if "::" in line and not line.startswith(" ")}


def test_two_shards_partition_the_collected_matrix():
    full = collect()
    shard0 = collect("--shard-count", "2", "--shard-index", "0")
    shard1 = collect("--shard-count", "2", "--shard-index", "1")
    assert shard0 | shard1 == full
    assert not shard0 & shard1
    assert shard0 and shard1


def test_out_of_range_shard_index_is_a_usage_error():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks", "--collect-only",
         "-q", "--shard-count", "2", "--shard-index", "5"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=120)
    assert result.returncode != 0
    assert "outside" in result.stdout + result.stderr
