"""The CI orchestrator's contracts: dry-run lists the exact commands,
exit codes survive the sequential fallback unchanged, and the summary
formats are machine-readable."""

import importlib.util
import json
import os
import subprocess
import sys

import pytest

from repro.parallel import ShardEngine, Task
from repro.parallel.procs import run_command

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


def load_ci_run():
    spec = importlib.util.spec_from_file_location(
        "ci_run", os.path.join(REPO_ROOT, "tools", "ci_run.py"))
    module = importlib.util.module_from_spec(spec)
    sys.modules["ci_run"] = module  # dataclasses resolve via sys.modules
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def ci_run():
    return load_ci_run()


def run_tool(*argv, timeout=120):
    return subprocess.run([sys.executable, "tools/ci_run.py", *argv],
                          cwd=REPO_ROOT, capture_output=True, text=True,
                          timeout=timeout)


def test_dry_run_lists_the_exact_tier1_command():
    result = run_tool("--suite", "tier1", "--dry-run")
    assert result.returncode == 0, result.stderr
    lines = result.stdout.strip().splitlines()
    assert len(lines) == 1
    assert lines[0] == f"PYTHONPATH=src {sys.executable} -m pytest -x -q"


def test_dry_run_all_covers_every_suite():
    result = run_tool("--suite", "all", "--dry-run")
    assert result.returncode == 0, result.stderr
    out = result.stdout
    assert "-m pytest -x -q" in out
    assert "-m pytest smoke -m docs_check -q" in out
    assert "-m pytest smoke -m crash_smoke -q" in out
    for workload in ("fio", "fio-mixed", "db_bench", "kvstore"):
        assert f"--workload {workload}" in out
    assert "tools/bench_engine.py --check" in out


def test_unknown_suite_exits_2():
    result = run_tool("--suite", "nope", "--dry-run")
    assert result.returncode == 2


def test_suite_requires_argument():
    result = run_tool("--dry-run")
    assert result.returncode == 2


def test_exit_codes_survive_the_sequential_fallback():
    failing = [sys.executable, "-c", "import sys; sys.exit(3)"]
    task = Task(key=(0,), fn="repro.parallel.procs:run_command",
                args=(failing,))
    parallel = ShardEngine(jobs=2).run([task])
    sequential = ShardEngine(jobs=2, force_sequential=True).run([task])
    assert parallel[0].value["returncode"] == 3
    assert sequential[0].value["returncode"] == 3


def test_run_steps_reports_failures_with_real_exit_codes(ci_run, capsys):
    steps = [
        ci_run.Step("ok", [sys.executable, "-c", "print('fine')"]),
        ci_run.Step("bad", [sys.executable, "-c", "import sys; sys.exit(5)"]),
        ci_run.Step("soft", [sys.executable, "-c", "import sys; sys.exit(7)"],
                    advisory=True),
    ]
    results = ci_run.run_steps(steps, jobs=1)
    capsys.readouterr()
    by_name = {r.step.name: r for r in results}
    assert by_name["ok"].returncode == 0 and by_name["ok"].status == "pass"
    assert by_name["bad"].returncode == 5 and by_name["bad"].status == "FAIL"
    assert by_name["soft"].returncode == 7 and by_name["soft"].status == "warn"
    payload = ci_run.summary_payload(["custom"], results)
    assert payload["ok"] is False
    assert payload["failures"] == ["bad"]
    assert payload["warnings"] == ["soft"]


def test_fanout_steps_share_exit_code_semantics(ci_run, capsys):
    steps = [
        ci_run.Step("f-ok", [sys.executable, "-c", "print('y')"],
                    fanout=True),
        ci_run.Step("f-bad", [sys.executable, "-c", "import sys; sys.exit(4)"],
                    fanout=True),
    ]
    results = ci_run.run_steps(steps, jobs=2)
    capsys.readouterr()
    by_name = {r.step.name: r for r in results}
    assert by_name["f-ok"].returncode == 0
    assert by_name["f-bad"].returncode == 4


def test_junit_output_is_well_formed_xml(ci_run, tmp_path, capsys):
    steps = [
        ci_run.Step("good", [sys.executable, "-c", "print('ok')"]),
        ci_run.Step("bad", [sys.executable, "-c", "import sys; sys.exit(2)"]),
    ]
    results = ci_run.run_steps(steps, jobs=1)
    capsys.readouterr()
    path = tmp_path / "junit.xml"
    ci_run.write_junit(str(path), ["custom"], results)
    import xml.etree.ElementTree as ET
    root = ET.parse(path).getroot()
    assert root.tag == "testsuite"
    assert root.get("tests") == "2"
    assert root.get("failures") == "1"
    cases = {case.get("name"): case for case in root.findall("testcase")}
    assert cases["bad"].find("failure") is not None
    assert cases["good"].find("failure") is None


def test_run_command_reports_missing_binary_as_127():
    record = run_command(["/nonexistent/binary-for-this-test"])
    assert record["returncode"] == 127


def test_json_summary_flag_round_trips(ci_run):
    steps = [ci_run.Step("ok", [sys.executable, "-c", "print(1)"])]
    results = ci_run.run_steps(steps, jobs=1)
    payload = ci_run.summary_payload(["x"], results)
    decoded = json.loads(json.dumps(payload))
    assert decoded["ok"] is True
    assert decoded["steps"][0]["name"] == "ok"
