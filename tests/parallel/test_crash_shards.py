"""Sharded crash sweeps must be *indistinguishable* from sequential
ones: same cases, same violations, same report bytes, for any worker
count. These tests pin that, plus the failure mode (a lost shard raises
rather than silently merging a partial sweep) and the seed matrix."""

import multiprocessing
import os
import subprocess
import sys

import pytest

from repro.faults import ExplorationError
from repro.parallel import ShardEngine, SweepSpec, parallel_explore, seed_matrix
from repro.parallel.crash import make_explorer, run_shard

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable")

SPEC = SweepSpec(workload="fio", budget=10, subsets=1, seed=0)


def case_fields(result):
    return [(case.point, case.variant, case.keep_lines,
             [(v.invariant, v.message) for v in case.violations])
            for case in result.cases]


def test_parallel_explore_equals_sequential_explore():
    sequential = make_explorer(SPEC).explore()
    parallel = parallel_explore(SPEC, jobs=4)
    assert parallel.points == sequential.points
    assert parallel.selected == sequential.selected
    assert case_fields(parallel) == case_fields(sequential)
    assert parallel.summary() == sequential.summary()


def test_case_plan_matches_explore_order():
    explorer = make_explorer(SPEC)
    plan = explorer.case_plan()
    result = explorer.explore()
    assert len(plan) == len(result.cases)
    for (index, variant), case in zip(plan, result.cases):
        expected_site = ("end_of_run" if index is None
                         else result.points[index].site)
        assert case.point.site == expected_site


def test_run_shard_executes_a_plan_slice():
    explorer = make_explorer(SPEC)
    plan = explorer.case_plan()[:3]
    cases = run_shard(
        {"workload": "fio", "ops": None, "budget": 10, "subsets": 1,
         "seed": 0}, plan)
    assert [case.point.index for case in cases] == \
        [index for index, _ in plan]


def run_cli(*argv):
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    return subprocess.run(
        [sys.executable, "tools/crash_explore.py", *argv],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=300)


def test_cli_report_is_byte_identical_across_jobs():
    one = run_cli("--workload", "fio", "--budget", "8", "--jobs", "1",
                  "--check")
    four = run_cli("--workload", "fio", "--budget", "8", "--jobs", "4",
                   "--check")
    assert one.returncode == 0, one.stdout + one.stderr
    assert four.returncode == 0, four.stdout + four.stderr
    assert one.stdout == four.stdout


def test_cli_json_is_byte_identical_across_jobs():
    one = run_cli("--workload", "fio", "--budget", "8", "--jobs", "1",
                  "--json")
    two = run_cli("--workload", "fio", "--budget", "8", "--jobs", "2",
                  "--json")
    assert one.returncode == 0, one.stdout + one.stderr
    assert one.stdout == two.stdout
    import json
    summary = json.loads(one.stdout)
    assert summary["ok"] is True
    assert summary["workload"] == "fio"
    assert summary["violations"] == 0


def test_cli_traced_report_is_byte_identical_across_jobs():
    # Tracing must not perturb the sweep: the sharded traced report is
    # byte-identical to the sequential traced report.
    one = run_cli("--workload", "fio", "--budget", "8", "--jobs", "1",
                  "--trace", "--check")
    four = run_cli("--workload", "fio", "--budget", "8", "--jobs", "4",
                   "--trace", "--check")
    assert one.returncode == 0, one.stdout + one.stderr
    assert four.returncode == 0, four.stdout + four.stderr
    assert one.stdout == four.stdout
    assert "tracing: enabled" in one.stdout


def test_cli_traced_json_matches_untraced_json():
    # The machine-readable summary carries no tracing fields, so traced
    # and untraced sweeps must emit the same bytes.
    plain = run_cli("--workload", "fio", "--budget", "8", "--json")
    traced = run_cli("--workload", "fio", "--budget", "8", "--trace",
                     "--json")
    assert plain.returncode == 0, plain.stdout + plain.stderr
    assert traced.returncode == 0, traced.stdout + traced.stderr
    assert plain.stdout == traced.stdout


@needs_fork
def test_lost_shard_raises_instead_of_merging_partial_sweep(monkeypatch):
    import repro.parallel.crash as crash_mod

    def explode(spec_fields, cases):
        raise RuntimeError("shard lost")

    # Workers fork after the patch, so they inherit the broken worker fn.
    monkeypatch.setattr(crash_mod, "run_shard", explode)
    engine = ShardEngine(jobs=2, max_attempts=1)
    with pytest.raises(ExplorationError, match="shards did not complete"):
        parallel_explore(SPEC, engine=engine)


def test_seed_matrix_is_deterministic_and_seed_ordered():
    spec = SweepSpec(workload="fio", budget=5, subsets=1, seed=0)
    cells_parallel = seed_matrix(spec, [2, 0, 1], jobs=3)
    cells_sequential = seed_matrix(spec, [0, 1, 2], jobs=1)
    assert cells_parallel == cells_sequential
    assert [cell["seed"] for cell in cells_parallel] == [0, 1, 2]
    assert all(cell["violations"] == 0 for cell in cells_parallel)


def test_sweep_spec_rejects_unknown_workload():
    with pytest.raises(ValueError, match="unknown crash workload"):
        SweepSpec(workload="nope")
