"""Contract tests for the generic shard engine: deterministic merge,
bounded retry on worker death, per-task timeouts, and the sequential
fallback. Worker functions live in ``tests/parallel/workers.py``."""

import multiprocessing
import time

import pytest

from repro.obs import MetricsRegistry
from repro.parallel import (PoolUnavailable, ShardEngine, Task,
                            register_engine_metrics)
from repro.parallel.engine import (CRASHED, DONE, FAILED, TIMEOUT, chunked,
                                   resolve_worker)

W = "tests.parallel.workers"

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable")


def make_tasks(n=8):
    return [Task(key=(i,), fn=f"{W}:square", args=(i,)) for i in range(n)]


def test_parallel_results_are_sorted_by_key_and_correct():
    engine = ShardEngine(jobs=3)
    results = engine.run(make_tasks(10))
    assert engine.mode == "parallel"
    assert [r.key for r in results] == [(i,) for i in range(10)]
    assert [r.value for r in results] == [i * i for i in range(10)]
    assert all(r.status == DONE for r in results)


def test_sequential_fallback_produces_identical_records():
    parallel = ShardEngine(jobs=2).run(make_tasks(6))
    sequential = ShardEngine(jobs=2, force_sequential=True).run(make_tasks(6))
    strip = [(r.key, r.status, r.value) for r in parallel]
    assert strip == [(r.key, r.status, r.value) for r in sequential]


def test_jobs_one_runs_in_process():
    engine = ShardEngine(jobs=1)
    results = engine.run(make_tasks(3))
    assert engine.mode == "sequential"
    assert [r.value for r in results] == [0, 1, 4]


def test_worker_exception_is_failed_not_retried_and_does_not_sink_the_run():
    tasks = make_tasks(4) + [Task(key=(99,), fn=f"{W}:boom",
                                  args=("kaboom",))]
    results = ShardEngine(jobs=2).run(tasks)
    by_key = {r.key: r for r in results}
    assert by_key[(99,)].status == FAILED
    assert "kaboom" in by_key[(99,)].error
    assert by_key[(99,)].attempts == 1
    assert all(by_key[(i,)].status == DONE for i in range(4))


@needs_fork
def test_killed_worker_is_retried_then_succeeds(tmp_path):
    marker = tmp_path / "died-once"
    registry = MetricsRegistry()
    tasks = make_tasks(4) + [Task(key=(50,), fn=f"{W}:die_once",
                                  args=(str(marker), 42))]
    results = ShardEngine(jobs=2, registry=registry).run(tasks)
    by_key = {r.key: r for r in results}
    assert by_key[(50,)].status == DONE
    assert by_key[(50,)].value == 42
    assert by_key[(50,)].attempts == 2
    assert registry.get("parallel.engine.tasks_retried").value() == 1
    assert registry.get("parallel.engine.worker_crashes").value() >= 1


@needs_fork
def test_persistently_dying_worker_is_reported_not_raised():
    registry = MetricsRegistry()
    tasks = make_tasks(4) + [Task(key=(50,), fn=f"{W}:die")]
    results = ShardEngine(jobs=2, max_attempts=2,
                          registry=registry).run(tasks)
    by_key = {r.key: r for r in results}
    assert by_key[(50,)].status == CRASHED
    assert by_key[(50,)].attempts == 2
    assert "died" in by_key[(50,)].error
    # The healthy tasks all completed despite the worker deaths.
    assert all(by_key[(i,)].status == DONE for i in range(4))


def test_hung_worker_is_timed_out_without_stalling_the_sweep():
    tasks = [Task(key=(0,), fn=f"{W}:sleepy", args=(60.0,), timeout=0.4)]
    tasks += [Task(key=(i,), fn=f"{W}:square", args=(i,))
              for i in range(1, 5)]
    registry = MetricsRegistry()
    started = time.perf_counter()
    results = ShardEngine(jobs=2, max_attempts=1,
                          registry=registry).run(tasks)
    assert time.perf_counter() - started < 30.0
    by_key = {r.key: r for r in results}
    assert by_key[(0,)].status == TIMEOUT
    assert all(by_key[(i,)].status == DONE for i in range(1, 5))
    assert registry.get("parallel.engine.tasks_timed_out").value() == 1


def test_pool_failure_degrades_to_sequential(monkeypatch):
    registry = MetricsRegistry()
    engine = ShardEngine(jobs=4, registry=registry)

    def refuse(self):
        raise PoolUnavailable("no processes today")

    monkeypatch.setattr(ShardEngine, "_spawn_worker", refuse)
    results = engine.run(make_tasks(5))
    assert engine.mode == "sequential"
    assert [r.value for r in results] == [i * i for i in range(5)]
    assert registry.get(
        "parallel.engine.sequential_fallbacks").value() == 1


def test_unpicklable_result_is_an_error_not_a_hang():
    results = ShardEngine(jobs=2).run(
        [Task(key=(0,), fn=f"{W}:unpicklable")])
    assert results[0].status == FAILED
    assert "picklable" in results[0].error


def test_duplicate_keys_rejected():
    with pytest.raises(ValueError, match="unique"):
        ShardEngine(jobs=1).run([Task(key=(0,), fn=f"{W}:square", args=(1,)),
                                 Task(key=(0,), fn=f"{W}:square", args=(2,))])


def test_empty_run():
    assert ShardEngine(jobs=4).run([]) == []


def test_resolve_worker_rejects_malformed_references():
    with pytest.raises(ValueError):
        resolve_worker("no_colon_here")


def test_chunked_partitions_in_order():
    assert chunked(list(range(7)), 3) == [[0, 1, 2], [3, 4], [5, 6]]
    assert chunked([1, 2], 8) == [[1], [2]]
    assert chunked([], 4) == [[]]
    flat = [x for chunk in chunked(list(range(100)), 7) for x in chunk]
    assert flat == list(range(100))


def test_register_engine_metrics_is_idempotent():
    registry = MetricsRegistry()
    first = register_engine_metrics(registry)
    second = register_engine_metrics(registry)
    assert first == second
    # Two engines on one registry must not collide either.
    ShardEngine(jobs=1, registry=registry)
    ShardEngine(jobs=1, registry=registry)
