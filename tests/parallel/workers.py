"""Worker functions for the shard-engine tests.

The engine resolves workers by dotted ``module:callable`` reference
inside the worker process, so everything here must be a top-level,
picklable-argument function — that constraint is exactly what the tests
exercise. The pathological ones simulate the failure modes the engine
must survive: Python exceptions, hung simulations, and workers dying
mid-task (once, or persistently).
"""

from __future__ import annotations

import os
import time


def square(x: int) -> int:
    return x * x


def boom(message: str = "worker exception") -> None:
    raise RuntimeError(message)


def sleepy(seconds: float) -> str:
    time.sleep(seconds)
    return "woke up"


def die(exitcode: int = 3) -> None:
    """Kill the worker process outright — no exception, no result."""
    os._exit(exitcode)


def die_once(marker_path: str, value: int) -> int:
    """Die on the first attempt, succeed on the retry. The marker file
    is the only cross-attempt state (worker processes share nothing)."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("attempt 1 died here\n")
        os._exit(9)
    return value


def unpicklable() -> object:
    return lambda: None
