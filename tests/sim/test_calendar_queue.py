"""The calendar queue must pop in exactly the order the binary heap it
replaced would have — ascending ``(time, seq)``, ties broken by insertion
sequence — under arbitrary interleavings of pushes and pops, including
same-time ties and far-future overflow times that force bucket refills.
"""

import heapq
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CalendarQueue, Environment


def _noop():
    pass


def drain_both(schedule):
    """Feed an identical (time, seq, fn, args) stream to a CalendarQueue
    and a heapq, interleaving pops per the schedule, and return both pop
    orders. ``schedule`` is a list of either a float time (push) or None
    (pop, if non-empty)."""
    calendar = CalendarQueue()
    heap = []
    cal_pops, heap_pops = [], []
    seq = 0
    for step in schedule:
        if step is None:
            if heap:
                heap_pops.append(heapq.heappop(heap)[:2])
                cal_pops.append(calendar.pop()[:2])
        else:
            entry = (step, seq, _noop, ())
            seq += 1
            calendar.push(entry)
            heapq.heappush(heap, entry)
    while heap:
        heap_pops.append(heapq.heappop(heap)[:2])
        cal_pops.append(calendar.pop()[:2])
    assert not calendar and len(calendar) == 0
    return cal_pops, heap_pops


# Times drawn from a tiny set of floats (forcing massive ties), ordinary
# magnitudes, and far-future outliers that land deep in the far rung.
times = st.one_of(
    st.sampled_from([0.0, 1.0, 1.0, 2.5]),
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    st.floats(min_value=1e12, max_value=1e15, allow_nan=False),
)
steps = st.lists(st.one_of(times, st.none()), min_size=0, max_size=300)


@settings(max_examples=200, deadline=None)
@given(schedule=steps)
def test_pop_order_matches_heap(schedule):
    cal_pops, heap_pops = drain_both(schedule)
    assert cal_pops == heap_pops


def test_pop_order_on_ten_thousand_randomized_schedules():
    """The tentpole's bulk proof: 10k seeded random schedules mixing
    monotonic pushes (the simulator's common case), ties, interior
    inserts below the near-bucket cursor, and far-future overflow."""
    rng = random.Random(1234)
    for trial in range(10_000):
        n = rng.randrange(1, 40)
        now = 0.0
        schedule = []
        for _ in range(n):
            roll = rng.random()
            if roll < 0.25:
                schedule.append(None)                    # pop
            elif roll < 0.45:
                schedule.append(now)                     # tie at the clock
            elif roll < 0.55:
                schedule.append(now + rng.random() * 1e13)  # far future
            else:
                now += rng.random()                      # monotonic advance
                schedule.append(now)
        cal_pops, heap_pops = drain_both(schedule)
        assert cal_pops == heap_pops, f"trial {trial} diverged"


def test_interior_insert_lands_before_later_near_entries():
    queue = CalendarQueue()
    for i in range(100):
        queue.push((float(i), i, _noop, ()))
    # Force a refill so a near bucket exists, then insert inside it.
    assert queue.pop()[0] == 0.0
    queue.push((0.5, 1000, _noop, ()))
    assert queue.pop()[:2] == (0.5, 1000)
    assert queue.pop()[:2] == (1.0, 1)


def test_environment_dispatch_uses_calendar_order():
    """End-to-end: timers scheduled out of order dispatch in time order,
    ties in schedule order, through the real event loop."""
    env = Environment()
    fired = []
    for delay, tag in [(5.0, "e"), (1.0, "a"), (3.0, "c"), (1.0, "b"),
                       (3.0, "d"), (1e14, "z")]:
        env.schedule_call(delay, fired.append, (tag,))
    env.run()
    assert fired == ["a", "b", "c", "d", "e", "z"]
