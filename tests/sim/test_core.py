"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Environment, SimulationError, StopSimulation


def test_timeout_advances_clock():
    env = Environment()

    def body(env):
        yield env.timeout(2.5)
        return env.now

    assert env.run_process(body(env)) == pytest.approx(2.5)


def test_zero_timeout_runs_immediately():
    env = Environment()

    def body(env):
        yield env.timeout(0.0)
        return "done"

    assert env.run_process(body(env)) == "done"
    assert env.now == 0.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_processes_interleave_in_time_order():
    env = Environment()
    order = []

    def worker(env, name, delay):
        yield env.timeout(delay)
        order.append(name)

    env.spawn(worker(env, "slow", 3.0))
    env.spawn(worker(env, "fast", 1.0))
    env.spawn(worker(env, "mid", 2.0))
    env.run()
    assert order == ["fast", "mid", "slow"]


def test_same_time_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def worker(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in ("a", "b", "c"):
        env.spawn(worker(env, name))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_return_value_via_join():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        return 99

    def parent(env):
        proc = env.spawn(child(env))
        value = yield proc.join()
        return value

    assert env.run_process(parent(env)) == 99


def test_join_already_finished_process():
    env = Environment()

    def child(env):
        yield env.timeout(0.5)
        return "early"

    def parent(env):
        proc = env.spawn(child(env))
        yield env.timeout(5.0)
        value = yield proc.join()
        return value

    assert env.run_process(parent(env)) == "early"


def test_exception_propagates_to_joiner():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    def parent(env):
        proc = env.spawn(child(env))
        try:
            yield proc.join()
        except ValueError as exc:
            return str(exc)
        return "no error"

    assert env.run_process(parent(env)) == "boom"


def test_unjoined_crash_raises_from_run():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise RuntimeError("unhandled")

    env.spawn(child(env))
    with pytest.raises(SimulationError):
        env.run()


def test_run_process_reraises_original_exception():
    env = Environment()

    def body(env):
        yield env.timeout(0.0)
        raise KeyError("missing")

    with pytest.raises(KeyError):
        env.run_process(body(env))


def test_run_until_pauses_then_resumes():
    env = Environment()
    marks = []

    def worker(env):
        yield env.timeout(10.0)
        marks.append(env.now)

    env.spawn(worker(env))
    env.run(until=5.0)
    assert env.now == 5.0
    assert marks == []
    env.run()
    assert marks == [10.0]


def test_stop_simulation_from_process():
    env = Environment()
    seen = []

    def stopper(env):
        yield env.timeout(1.0)
        raise StopSimulation()

    def other(env):
        yield env.timeout(2.0)
        seen.append("late")

    env.spawn(stopper(env))
    env.spawn(other(env))
    env.run()
    assert seen == []
    assert env.now == 1.0


def test_yield_non_waitable_is_error():
    env = Environment()

    def bad(env):
        yield 42

    def parent(env):
        proc = env.spawn(bad(env))
        with pytest.raises(SimulationError):
            yield proc.join()
        return True

    assert env.run_process(parent(env)) is True


def test_yield_from_composition():
    env = Environment()

    def inner(env):
        yield env.timeout(1.0)
        return 7

    def outer(env):
        a = yield from inner(env)
        b = yield from inner(env)
        return a + b

    assert env.run_process(outer(env)) == 14
    assert env.now == pytest.approx(2.0)


def test_kill_stops_process():
    env = Environment()
    marks = []

    def worker(env):
        yield env.timeout(5.0)
        marks.append("ran")

    proc = env.spawn(worker(env))
    env.run(until=1.0)
    proc.kill()
    env.run()
    assert marks == []
    assert not proc.alive


def test_event_value_passed_to_waiter():
    env = Environment()

    def setter(env, event):
        yield env.timeout(1.0)
        event.set("payload")

    def waiter(env, event):
        value = yield event.wait()
        return value

    event = env.event()
    env.spawn(setter(env, event))
    assert env.run_process(waiter(env, event)) == "payload"


def test_event_set_before_wait():
    env = Environment()
    event = env.event()
    event.set(123)

    def waiter(env):
        value = yield event.wait()
        return value

    assert env.run_process(waiter(env)) == 123


def test_event_fail_raises_in_waiter():
    env = Environment()
    event = env.event()

    def waiter(env):
        try:
            yield event.wait()
        except OSError as exc:
            return exc.errno
        return None

    def failer(env):
        yield env.timeout(1.0)
        event.fail(OSError(5, "EIO"))

    env.spawn(failer(env))
    assert env.run_process(waiter(env)) == 5


def test_deadlock_detected_by_run_process():
    env = Environment()
    event = env.event()  # never set

    def stuck(env):
        yield event.wait()

    with pytest.raises(SimulationError, match="did not finish"):
        env.run_process(stuck(env))
