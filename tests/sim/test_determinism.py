"""Determinism regressions for the zero-delay lane (see repro.sim.core).

The lane is a fast path, not a semantic change: same-timestamp callbacks
must still fire in global schedule order — the ``(time, sequence)`` total
order the heap alone used to provide — and a seeded run must replay
identically event for event.
"""

from repro.sim import Environment
from repro.sim.rng import DeterministicRandom, shuffled


def test_zero_delay_callbacks_fire_in_schedule_order():
    env = Environment()
    order = []
    for i in range(10):
        env.schedule_call(0.0, order.append, (i,))
    env.run()
    assert order == list(range(10))


def test_lane_does_not_overtake_equal_timestamp_heap_entries():
    """A zero-delay callback scheduled while dispatching time t must not
    jump ahead of an already-scheduled heap entry also due at t."""
    env = Environment()
    order = []

    def first():
        order.append("heap-first")
        # Scheduled *during* t=1.0 dispatch: later sequence number, so it
        # fires after every heap entry already due at t=1.0.
        env.schedule_call(0.0, order.append, ("lane",))

    env.schedule(1.0, first)
    env.schedule(1.0, lambda: order.append("heap-second"))
    env.schedule(1.0, lambda: order.append("heap-third"))
    env.run()
    assert order == ["heap-first", "heap-second", "heap-third", "lane"]


def test_mixed_delays_respect_time_then_sequence_order():
    env = Environment()
    order = []
    env.schedule_call(2.0, order.append, ("late",))
    env.schedule_call(0.0, order.append, ("now-a",))
    env.schedule_call(1.0, order.append, ("mid",))
    env.schedule_call(0.0, order.append, ("now-b",))
    env.run()
    assert order == ["now-a", "now-b", "mid", "late"]


def test_waitable_subscribers_fire_in_subscription_order():
    env = Environment()
    order = []

    def body():
        waitable = env.event()
        for i in range(5):
            waitable.subscribe(lambda _v, _e, i=i: order.append(i))
        env.schedule_call(0.0, waitable.set, ())
        yield waitable

    env.run_process(body())
    assert order == list(range(5))


def _seeded_trace(seed: int):
    """A small process zoo driven by repro.sim.rng: rng-jittered timers,
    zero-delay chains, and cross-process wakeups, all recorded as
    (time, label) pairs."""
    env = Environment()
    rng = DeterministicRandom(seed)
    trace = []
    gate = env.event()

    def ticker(name, count):
        for i in range(count):
            yield env.timeout(rng.random() * 1e-3)
            trace.append((env.now, f"{name}:{i}"))
            if name == "a" and i == 2:
                gate.set("open")

    def chained(name):
        value = yield gate
        trace.append((env.now, f"{name}:woke:{value}"))
        for i in range(3):
            yield env.timeout(0.0)
            trace.append((env.now, f"{name}:zero:{i}"))

    for name in shuffled(rng, ["w", "x", "y"]):
        env.spawn(chained(name), name=name)
    env.spawn(ticker("a", 5), name="a")
    env.spawn(ticker("b", 5), name="b")
    env.run()
    return env.now, env.events_dispatched, trace


def test_identical_seeded_runs_produce_identical_traces():
    first = _seeded_trace(seed=1234)
    second = _seeded_trace(seed=1234)
    assert first == second
    # And the seed actually matters (the trace is not vacuously stable).
    assert _seeded_trace(seed=99)[2] != first[2]
