"""Tests for deterministic RNG helpers (Zipfian generator, shuffles)."""

import random

import pytest

from repro.sim import DeterministicRandom, shuffled, zipf_ranks


def test_deterministic_random_reproducible():
    a = DeterministicRandom(42)
    b = DeterministicRandom(42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]
    assert a.seed_value == 42


def test_zipf_ranks_in_range():
    rng = random.Random(1)
    ranks = zipf_ranks(rng, n=100, count=5000)
    assert len(ranks) == 5000
    assert all(0 <= rank < 100 + 1 for rank in ranks)


def test_zipf_skew():
    """Rank 0 must dominate: with theta=0.99 the head of the distribution
    takes a large share."""
    rng = random.Random(2)
    ranks = zipf_ranks(rng, n=1000, count=20000)
    rank0_share = ranks.count(0) / len(ranks)
    uniform_share = 1 / 1000
    assert rank0_share > 20 * uniform_share


def test_zipf_theta_controls_skew():
    rng1, rng2 = random.Random(3), random.Random(3)
    heavy = zipf_ranks(rng1, 500, 10000, theta=0.99)
    light = zipf_ranks(rng2, 500, 10000, theta=0.5)
    assert heavy.count(0) > light.count(0)


def test_zipf_rejects_bad_n():
    with pytest.raises(ValueError):
        zipf_ranks(random.Random(0), 0, 10)


def test_shuffled_does_not_mutate():
    rng = random.Random(7)
    original = [1, 2, 3, 4, 5]
    copy = shuffled(rng, original)
    assert original == [1, 2, 3, 4, 5]
    assert sorted(copy) == original


def test_shuffled_deterministic():
    assert shuffled(random.Random(9), range(20)) == \
        shuffled(random.Random(9), range(20))
