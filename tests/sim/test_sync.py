"""Unit tests for simulation synchronization primitives."""

import pytest

from repro.sim import Condition, Environment, Lock, Queue, Semaphore, SimulationError


def test_lock_mutual_exclusion():
    env = Environment()
    lock = Lock(env)
    trace = []

    def worker(env, name):
        yield lock.acquire()
        trace.append((name, "in", env.now))
        yield env.timeout(1.0)
        trace.append((name, "out", env.now))
        lock.release()

    env.spawn(worker(env, "a"))
    env.spawn(worker(env, "b"))
    env.run()
    # b cannot enter before a leaves.
    assert trace == [("a", "in", 0.0), ("a", "out", 1.0), ("b", "in", 1.0), ("b", "out", 2.0)]


def test_lock_fifo_ordering():
    env = Environment()
    lock = Lock(env)
    order = []

    def holder(env):
        yield lock.acquire()
        yield env.timeout(1.0)
        lock.release()

    def waiter(env, name, arrive):
        yield env.timeout(arrive)
        yield lock.acquire()
        order.append(name)
        lock.release()

    env.spawn(holder(env))
    env.spawn(waiter(env, "first", 0.1))
    env.spawn(waiter(env, "second", 0.2))
    env.spawn(waiter(env, "third", 0.3))
    env.run()
    assert order == ["first", "second", "third"]


def test_lock_release_unlocked_raises():
    env = Environment()
    lock = Lock(env)
    with pytest.raises(SimulationError):
        lock.release()


def test_try_acquire():
    env = Environment()
    lock = Lock(env)
    assert lock.try_acquire() is True
    assert lock.try_acquire() is False
    lock.release()
    assert lock.try_acquire() is True


def test_condition_wait_notify():
    env = Environment()
    lock = Lock(env)
    cond = Condition(env, lock)
    state = {"ready": False}
    trace = []

    def consumer(env):
        yield lock.acquire()
        while not state["ready"]:
            yield cond.wait()
        trace.append(("consumed", env.now))
        lock.release()

    def producer(env):
        yield env.timeout(3.0)
        yield lock.acquire()
        state["ready"] = True
        cond.notify()
        lock.release()

    env.spawn(consumer(env))
    env.spawn(producer(env))
    env.run()
    assert trace == [("consumed", 3.0)]


def test_condition_notify_all_wakes_everyone():
    env = Environment()
    lock = Lock(env)
    cond = Condition(env, lock)
    woken = []

    def sleeper(env, name):
        yield lock.acquire()
        yield cond.wait()
        woken.append(name)
        lock.release()

    def waker(env):
        yield env.timeout(1.0)
        yield lock.acquire()
        cond.notify_all()
        lock.release()

    for name in ("x", "y", "z"):
        env.spawn(sleeper(env, name))
    env.spawn(waker(env))
    env.run()
    assert sorted(woken) == ["x", "y", "z"]


def test_condition_wait_without_lock_raises():
    env = Environment()
    lock = Lock(env)
    cond = Condition(env, lock)

    def bad(env):
        yield cond.wait()

    with pytest.raises(SimulationError):
        env.run_process(bad(env))


def test_semaphore_limits_concurrency():
    env = Environment()
    sem = Semaphore(env, value=2)
    active = {"count": 0, "peak": 0}

    def worker(env):
        yield sem.acquire()
        active["count"] += 1
        active["peak"] = max(active["peak"], active["count"])
        yield env.timeout(1.0)
        active["count"] -= 1
        sem.release()

    for _ in range(6):
        env.spawn(worker(env))
    env.run()
    assert active["peak"] == 2
    assert env.now == pytest.approx(3.0)


def test_semaphore_negative_value_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Semaphore(env, value=-1)


def test_queue_fifo_transfer():
    env = Environment()
    queue = Queue(env)
    received = []

    def producer(env):
        for i in range(3):
            yield env.timeout(1.0)
            yield queue.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield queue.get()
            received.append((item, env.now))

    env.spawn(producer(env))
    env.spawn(consumer(env))
    env.run()
    assert received == [(0, 1.0), (1, 2.0), (2, 3.0)]


def test_queue_get_before_put():
    env = Environment()
    queue = Queue(env)

    def consumer(env):
        item = yield queue.get()
        return item

    def producer(env):
        yield env.timeout(2.0)
        yield queue.put("late")

    env.spawn(producer(env))
    assert env.run_process(consumer(env)) == "late"


def test_bounded_queue_blocks_putter():
    env = Environment()
    queue = Queue(env, capacity=1)
    times = []

    def producer(env):
        yield queue.put("a")
        times.append(("put-a", env.now))
        yield queue.put("b")  # blocks until consumer takes "a"
        times.append(("put-b", env.now))

    def consumer(env):
        yield env.timeout(5.0)
        item = yield queue.get()
        times.append((f"got-{item}", env.now))

    env.spawn(producer(env))
    env.spawn(consumer(env))
    env.run()
    assert ("put-a", 0.0) in times
    put_b = [t for name, t in times if name == "put-b"][0]
    assert put_b == pytest.approx(5.0)


def test_queue_len():
    env = Environment()
    queue = Queue(env)

    def body(env):
        yield queue.put(1)
        yield queue.put(2)
        assert len(queue) == 2
        yield queue.get()
        assert len(queue) == 1
        return True

    assert env.run_process(body(env)) is True
