"""Tests for the tracing subsystem and its instrumentation hooks."""

import json

import pytest

from repro.block import SsdDevice
from repro.core import Nvcache, NvcacheConfig, NvmmLog
from repro.fs import Ext4
from repro.kernel import Kernel, O_CREAT, O_WRONLY
from repro.nvmm import NvmmDevice
from repro.sim import Environment, Tracer
from repro.units import MIB


def test_tracer_records_events():
    tracer = Tracer()
    tracer.add(1.0, 0.5, "ssd", "write", "ssd0", offset=4096)
    tracer.add(2.0, 0.1, "ssd", "flush", "ssd0")
    assert len(tracer.events) == 2
    assert tracer.by_category("ssd")[0].name == "write"
    assert tracer.total_time("ssd") == pytest.approx(0.6)
    assert tracer.total_time("ssd", "flush") == pytest.approx(0.1)


def test_tracer_capacity_bounded():
    tracer = Tracer(capacity=3)
    for i in range(10):
        tracer.add(i, 0.0, "c", "n", "t")
    assert len(tracer.events) == 3
    assert tracer.dropped == 7


def test_chrome_export_roundtrips(tmp_path):
    tracer = Tracer()
    tracer.add(0.001, 0.0005, "nvcache", "pwrite", "app", nbytes=4096)
    path = tmp_path / "trace.json"
    tracer.to_chrome_json(str(path))
    loaded = json.loads(path.read_text())
    (event,) = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
    assert event["name"] == "pwrite"
    assert event["ph"] == "X"
    assert event["ts"] == pytest.approx(1000.0)  # 1 ms in us
    assert event["args"]["nbytes"] == 4096


def test_chrome_export_metadata_and_integer_tids(tmp_path):
    """Perfetto-clean export: M-phase process/thread metadata and stable
    integer tids instead of the track string."""
    tracer = Tracer()
    tracer.add(0.001, 0.0005, "ssd", "write", "ssd0")
    tracer.add(0.002, 0.0001, "nvcache", "batch", "cleanup")
    tracer.add(0.003, 0.0005, "ssd", "read", "ssd0")
    events = tracer.to_chrome_events()
    meta = [e for e in events if e["ph"] == "M"]
    body = [e for e in events if e["ph"] == "X"]
    process_names = [e for e in meta if e["name"] == "process_name"]
    thread_names = [e for e in meta if e["name"] == "thread_name"]
    assert len(process_names) == 1
    assert {e["args"]["name"] for e in thread_names} == {"ssd0", "cleanup"}
    # Every tid is a stable small integer, same track -> same tid.
    assert all(isinstance(e["tid"], int) for e in events)
    assert body[0]["tid"] == body[2]["tid"]  # both ssd0
    assert body[0]["tid"] != body[1]["tid"]
    tid_by_track = {e["args"]["name"]: e["tid"] for e in thread_names}
    assert body[0]["tid"] == tid_by_track["ssd0"]
    assert body[1]["tid"] == tid_by_track["cleanup"]


def test_block_device_emits_events():
    env = Environment()
    env.tracer = Tracer()
    ssd = SsdDevice(env, size=64 * MIB)

    def body():
        yield from ssd.write(0, b"x" * 4096)
        yield from ssd.read(0, 4096)
        yield from ssd.flush()

    env.run_process(body())
    names = [event.name for event in env.tracer.by_category("ssd0")]
    assert names == ["write", "read", "flush"]


def test_nvcache_emits_write_and_cleanup_events():
    env = Environment()
    env.tracer = Tracer()
    kernel = Kernel(env)
    kernel.mount("/", Ext4(env, SsdDevice(env, size=64 * MIB)))
    config = NvcacheConfig(log_entries=64, read_cache_pages=16,
                           batch_min=2, batch_max=16)
    nv = Nvcache(env, kernel, NvmmDevice(env, size=NvmmLog.required_size(config)),
                 config)

    def body():
        fd = yield from nv.open("/f", O_CREAT | O_WRONLY)
        for i in range(5):
            yield from nv.pwrite(fd, b"t" * 1024, i * 1024)
        yield nv.cleanup.request_drain()

    env.run_process(body())
    writes = [e for e in env.tracer.by_category("nvcache") if e.name == "pwrite"]
    batches = [e for e in env.tracer.by_category("nvcache") if e.name == "batch"]
    assert len(writes) == 5
    assert len(batches) >= 1
    assert sum(b.args["entries"] for b in batches) == 5


def test_summary_is_readable():
    tracer = Tracer()
    tracer.add(0, 1e-6, "ssd", "write", "ssd0")
    tracer.add(0, 3e-6, "ssd", "write", "ssd0")
    text = tracer.summary()
    assert "2 events" in text
    assert "ssd/write" in text
    assert "n=2" in text


def test_tracing_off_by_default_costs_nothing():
    env = Environment()
    assert env.tracer is None
    ssd = SsdDevice(env, size=64 * MIB)

    def body():
        yield from ssd.write(0, b"y" * 4096)

    env.run_process(body())  # must not raise
