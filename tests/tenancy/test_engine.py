"""Traffic-engine gates: determinism, bit-identity, fairness, tracing."""

import pytest

from repro.faults import CrashPointRecorder
from repro.tenancy import TrafficEngine, make_mix, make_schedule
from repro.tenancy.clients import TenantSpec


def small_engine(seed=0, tenants=12, operations=4, quota=8, qos=True,
                 schedule="bursty", duration=0.2, workers=8, **kwargs):
    specs = make_mix(tenants, seed=seed, operations=operations,
                     quota_entries=quota)
    return TrafficEngine(specs, workers=workers, seed=seed,
                         schedule=make_schedule(schedule, duration=duration),
                         qos=qos, **kwargs)


class TestDeterminism:
    def test_repeat_run_byte_identical(self):
        first = small_engine(seed=5).run()
        second = small_engine(seed=5).run()
        assert first.digest() == second.digest()
        assert first.clock == second.clock

    def test_different_seeds_differ(self):
        assert small_engine(seed=1).run().digest() != \
            small_engine(seed=2).run().digest()

    def test_crash_point_stream_byte_identical(self):
        def stream(seed):
            engine = small_engine(seed=seed, tenants=6, operations=3)
            stack = engine.build()
            recorder = CrashPointRecorder(stack.env)
            engine.run()
            return [(p.site, p.label, p.time) for p in recorder.points]

        first = stream(4)
        second = stream(4)
        assert first  # the run hits persistence boundaries
        assert first == second

    def test_thousand_client_mixed_run_deterministic(self):
        """The acceptance-criteria scale: 1000 logical clients, all five
        kinds, deterministic clock/stats byte for byte."""
        def once():
            specs = make_mix(1000, seed=42, operations=2, quota_entries=32)
            engine = TrafficEngine(
                specs, workers=64, seed=42,
                schedule=make_schedule("bursty", duration=1.0))
            report = engine.run()
            return report.digest()

        first = once()
        second = once()
        assert first == second


class TestQosDisabled:
    def test_qos_disabled_runs_and_is_deterministic(self):
        first = small_engine(seed=3, qos=False).run()
        second = small_engine(seed=3, qos=False).run()
        assert first.digest() == second.digest()
        assert first.engine["qos"] is False

    def test_qos_disabled_reports_no_quota_data(self):
        report = small_engine(seed=3, qos=False).run()
        for record in report.tenants.values():
            assert record["quota_peak"] == 0.0
            assert record["quota_wait_s"] == 0.0


class TestFairness:
    def test_all_requests_complete_under_tight_quotas(self):
        report = small_engine(seed=3, tenants=16, operations=10, quota=2,
                              duration=0.05, workers=12).run()
        assert report.engine["completed"] == report.engine["requests"]

    def test_quota_constrained_bursty_run_meets_fairness_gates(self):
        """The ISSUE acceptance gate: under a quota-constrained bursty
        schedule, priority classes meet p99 targets and nobody starves."""
        report = small_engine(seed=0, tenants=64, operations=8, quota=8,
                              duration=0.5, workers=16).run()
        assert report.engine["completed"] == report.engine["requests"]
        assert report.jain >= 0.8
        assert report.starvation <= 0.75
        # Per-class p99 targets. Classes carry different workload mixes,
        # so the targets are absolute budgets, not a cross-class ordering;
        # the run is deterministic, so these have ~10x headroom over the
        # measured values for this seed.
        targets = {"interactive": 5e-4, "standard": 2e-2, "batch": 2e-2}
        for name, budget in targets.items():
            assert report.classes[name]["p99_latency"] < budget, name
        # The quota gate actually engaged somewhere in the run.
        assert any(record["quota_wait_s"] + record["admission_wait_s"] > 0
                   for record in report.tenants.values())

    def test_quota_waits_recorded_under_pressure(self):
        engine = small_engine(seed=3, tenants=16, operations=10, quota=2,
                              duration=0.05, workers=12)
        engine.run()
        assert engine.qos.quota_waits > 0
        assert engine.qos.blocked() == 0          # fully drained
        assert engine.qos.inflight_entries() == 0


class TestMetricsAndTracing:
    def test_metrics_surface_registered(self):
        engine = small_engine(seed=1, tenants=6, operations=3, metrics=True)
        report = engine.run()
        names = set(engine.stack.metrics.names())
        assert {"tenancy.engine.requests_total",
                "tenancy.engine.requests_completed",
                "tenancy.engine.queue_depth", "tenancy.engine.workers",
                "tenancy.engine.queue_wait",
                "tenancy.engine.request_latency",
                "tenancy.fairness.jain_index", "tenancy.fairness.starvation",
                "tenancy.fairness.slowdown_max",
                "tenancy.class.interactive_latency",
                "tenancy.class.standard_latency",
                "tenancy.class.batch_latency",
                "core.qos.quota_waits"} <= names
        total = engine.stack.metrics.get("tenancy.engine.requests_total")
        assert total.value() == report.engine["requests"]
        jain = engine.stack.metrics.get("tenancy.fairness.jain_index")
        assert jain.value() == pytest.approx(report.jain)

    def test_root_spans_carry_tenant_tags(self):
        engine = small_engine(seed=1, tenants=6, operations=3, tracing=True)
        engine.run()
        tagged = [span for span in engine.stack.tracer.roots()
                  if "tenant" in span.args]
        assert tagged
        for span in tagged:
            assert span.args["tenant"].startswith("t")
            assert span.args["io_class"] in ("interactive", "standard",
                                             "batch")

    def test_tracing_does_not_perturb_results(self):
        plain = small_engine(seed=6).run()
        traced = small_engine(seed=6, tracing=True).run()
        assert plain.digest() == traced.digest()

    def test_metrics_do_not_perturb_results(self):
        plain = small_engine(seed=6).run()
        measured = small_engine(seed=6, metrics=True).run()
        assert plain.digest() == measured.digest()


class TestValidation:
    def test_duplicate_tenant_ids_rejected(self):
        spec = TenantSpec(tenant_id="dup", kind="fio")
        with pytest.raises(ValueError, match="unique"):
            TrafficEngine([spec, spec])

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            TrafficEngine([TenantSpec(tenant_id="a", kind="fio")], workers=0)

    def test_unknown_kind_rejected(self):
        engine = TrafficEngine([TenantSpec(tenant_id="a", kind="nope")])
        with pytest.raises(ValueError, match="unknown client kind"):
            engine.build()

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            make_schedule("lumpy")
