"""QoS manager semantics: admission, quotas, priorities, bit-identity."""

import pytest

from repro.core import DEFAULT_CLASSES, IOClass, QosManager
from repro.harness.systems import Scale, build_stack
from repro.sim import Environment
from repro.workloads.fio import FioJob, run_fio


def make_qos(log_entries=64, classes=DEFAULT_CLASSES):
    env = Environment()
    qos = QosManager(env, classes=classes, log_entries=log_entries)
    env.qos = qos
    return env, qos


def drain(generator):
    """Exhaust an admit() generator, returning the waitables it yielded."""
    return list(generator)


class TestRegistration:
    def test_duplicate_tenant_rejected(self):
        _env, qos = make_qos()
        qos.register_tenant("a")
        with pytest.raises(ValueError, match="already registered"):
            qos.register_tenant("a")

    def test_duplicate_class_rejected(self):
        env = Environment()
        with pytest.raises(ValueError, match="duplicate"):
            QosManager(env, classes=(IOClass("x"), IOClass("x")))

    def test_bad_quota_rejected(self):
        _env, qos = make_qos()
        with pytest.raises(ValueError, match="quota_entries"):
            qos.register_tenant("a", quota_entries=0)

    def test_bad_share_rejected(self):
        with pytest.raises(ValueError, match="max_share"):
            IOClass("x", max_share=1.5)


class TestBinding:
    def test_unbound_context_is_none(self):
        _env, qos = make_qos()
        assert qos.current_context() is None
        assert qos.context_tags() is None

    def test_bind_unbind(self):
        _env, qos = make_qos()
        qos.register_tenant("a")
        qos.bind("a", "standard")
        assert qos.context_tags() == ("a", "standard")
        qos.unbind()
        assert qos.context_tags() is None

    def test_nested_binds_depth_counted(self):
        _env, qos = make_qos()
        qos.register_tenant("a")
        qos.bind("a", "interactive")
        qos.bind("a", "interactive")   # TenantLibc binding around each call
        qos.unbind()
        assert qos.context_tags() == ("a", "interactive")
        qos.unbind()
        assert qos.context_tags() is None

    def test_unbind_without_bind_is_noop(self):
        _env, qos = make_qos()
        qos.unbind()
        assert qos.context_tags() is None


class TestAdmission:
    def test_unbound_admit_yields_nothing(self):
        _env, qos = make_qos()
        assert drain(qos.admit(4)) == []
        assert qos.inflight_entries() == 0

    def test_unconstrained_admit_yields_nothing_and_charges(self):
        _env, qos = make_qos()
        tenant = qos.register_tenant("a", quota_entries=8)
        qos.bind("a", "standard")
        assert drain(qos.admit(4)) == []
        assert tenant.charged == 4
        assert qos.inflight_entries() == 4

    def test_quota_blocks_and_retirement_releases(self):
        env, qos = make_qos()
        tenant = qos.register_tenant("a", quota_entries=4)
        results = []

        def writer(count, seqs):
            qos.bind("a", "standard")
            yield from qos.admit(count)
            qos.note_alloc(seqs[0], count)
            qos.unbind()
            results.append((count, env.now))

        env.spawn(writer(4, [0]), name="w1")
        env.spawn(writer(2, [4]), name="w2")  # over quota: must wait
        env.run(until=0.5)
        assert len(results) == 1
        assert qos.blocked() == 1
        assert tenant.quota_wait_s == 0.0
        qos.note_retired([0, 1, 2, 3])
        env.run()
        assert len(results) == 2
        assert tenant.charged == 2
        assert qos.quota_waits == 1
        assert qos.admission_waits == 0

    def test_class_cap_blocks_and_classifies_as_admission_wait(self):
        env, qos = make_qos(log_entries=16)  # batch cap = 8 entries
        qos.register_tenant("a")
        qos.register_tenant("b")
        done = []

        def writer(tenant_id, count, first_seq):
            qos.bind(tenant_id, "batch")
            yield from qos.admit(count)
            qos.note_alloc(first_seq, count)
            qos.unbind()
            done.append(tenant_id)

        env.spawn(writer("a", 8, 0), name="w1")
        env.spawn(writer("b", 4, 8), name="w2")  # cap exceeded
        env.run(until=0.5)
        assert done == ["a"]
        assert qos.admission_waits == 1
        assert qos.quota_waits == 0
        qos.note_retired(range(8))
        env.run()
        assert done == ["a", "b"]

    def test_oversized_request_admitted_alone(self):
        """A request larger than the quota must not deadlock: it is
        admitted once the tenant has nothing else in flight."""
        _env, qos = make_qos()
        tenant = qos.register_tenant("a", quota_entries=2)
        qos.bind("a", "standard")
        assert drain(qos.admit(10)) == []   # 10 > quota, but charged == 0
        assert tenant.charged == 10

    def test_priority_order_on_release(self):
        """Blocked waiters release in (class priority, arrival) order:
        interactive overtakes batch even when batch arrived first."""
        env, qos = make_qos(log_entries=8)  # batch cap = 4 entries
        qos.register_tenant("batchy")
        qos.register_tenant("slow")
        qos.register_tenant("inter", quota_entries=2)
        order = []

        def holder():
            qos.bind("batchy", "batch")
            yield from qos.admit(4)           # fills the batch cap
            qos.note_alloc(0, 4)
            qos.unbind()

        def blocked(tenant_id, io_class, count, first_seq):
            qos.bind(tenant_id, io_class)
            yield from qos.admit(count)
            qos.note_alloc(first_seq, count)
            qos.unbind()
            order.append(tenant_id)

        env.spawn(holder(), name="h")
        env.run(until=0.1)
        # batch-class waiter arrives FIRST...
        env.spawn(blocked("slow", "batch", 2, 4), name="b1")
        env.run(until=0.2)
        # ...then "inter" charges to its quota and blocks on it, so an
        # interactive waiter arrives SECOND.
        charged = []

        def precharge():
            qos.bind("inter", "interactive")
            yield from qos.admit(2)
            qos.note_alloc(6, 2)
            qos.unbind()
            charged.append(True)

        env.spawn(precharge(), name="pc")
        env.run(until=0.25)
        assert charged == [True]
        env.spawn(blocked("inter", "interactive", 2, 8), name="b2")
        env.run(until=0.3)
        assert order == []
        # Retire everything: both waiters become admissible at once;
        # interactive (priority 0) must release before batch (priority 2).
        qos.note_retired(range(8))
        env.run()
        assert order == ["inter", "slow"]

    def test_pressure_reflects_blocked_waiters(self):
        env, qos = make_qos()
        qos.register_tenant("a", quota_entries=2)
        assert not qos.pressure()

        def writer():
            qos.bind("a", "standard")
            yield from qos.admit(2)
            qos.note_alloc(0, 2)
            yield from qos.admit(2)
            qos.note_alloc(2, 2)
            qos.unbind()

        env.spawn(writer(), name="w")
        env.run(until=0.1)
        assert qos.pressure()
        qos.note_retired([0, 1])
        env.run()
        assert not qos.pressure()


class TestTallies:
    def test_tallies_require_bound_context(self):
        _env, qos = make_qos()
        tenant = qos.register_tenant("a")
        qos.tally_write(100)
        qos.tally_hit()
        assert tenant.write_ops == 0
        qos.bind("a", "standard")
        qos.tally_write(100)
        qos.tally_read(50)
        qos.tally_hit()
        qos.tally_miss()
        qos.unbind()
        assert tenant.write_ops == 1
        assert tenant.bytes_written == 100
        assert tenant.read_ops == 1
        assert tenant.bytes_read == 50
        assert tenant.hit_ratio() == 0.5

    def test_hit_ratio_empty_is_zero(self):
        _env, qos = make_qos()
        tenant = qos.register_tenant("a")
        assert tenant.hit_ratio() == 0.0


class TestMetrics:
    def test_register_metrics_names(self):
        from repro.obs import MetricsRegistry
        _env, qos = make_qos()
        registry = MetricsRegistry()
        qos.register_metrics(registry)
        names = set(registry.names())
        assert {"core.qos.admission_waits", "core.qos.quota_waits",
                "core.qos.inflight_entries", "core.qos.blocked",
                "core.qos.quota_occupancy",
                "core.qos.wait_latency"} <= names


class TestBitIdentity:
    def test_attached_but_unbound_manager_is_bit_identical(self):
        """A QosManager with no bound context must not change one event
        of a run — the acceptance gate for 'tenancy disabled == today'."""

        def once(with_qos):
            stack = build_stack("nvcache+ssd", scale=Scale(4096))
            if with_qos:
                qos = QosManager(stack.env,
                                 log_entries=stack.nvcache.config.log_entries)
                stack.env.qos = qos
                qos.register_tenant("ghost", quota_entries=1)
            result = run_fio(stack.env, stack.libc,
                             FioJob(rw="randwrite", size=1 << 20,
                                    block_size=4096, numjobs=2, fsync=8,
                                    seed=7),
                             settle=stack.settle)
            return (stack.env.now, stack.env.events_dispatched,
                    result.bytes_written, result.elapsed,
                    stack.nvcache.stats.writes,
                    stack.nvcache.stats.cleanup_batches)

        assert once(False) == once(True)
