"""Sweep cells and shardable seed sweeps (repro.parallel contract)."""

import json

from repro.tenancy import run_cell, sweep_seeds


PARAMS = {"tenants": 8, "operations": 3, "workers": 6,
          "schedule": "bursty", "duration": 0.1, "quota_entries": 8}


class TestRunCell:
    def test_cell_is_deterministic(self):
        first = run_cell(dict(PARAMS, seed=7))
        second = run_cell(dict(PARAMS, seed=7))
        assert first == second
        assert first["digest"] == second["digest"]

    def test_cell_fields(self):
        cell = run_cell(dict(PARAMS, seed=7))
        assert cell["seed"] == 7
        assert cell["completed"] == cell["requests"] == 24
        assert 0.0 < cell["jain"] <= 1.0
        assert len(cell["digest"]) == 64   # sha256 hex

    def test_qos_toggle_changes_digest_under_pressure(self):
        tight = dict(PARAMS, seed=7, quota_entries=1, duration=0.01)
        with_qos = run_cell(dict(tight, qos=True))
        without = run_cell(dict(tight, qos=False))
        assert with_qos["digest"] != without["digest"]


class TestSweepSeeds:
    def test_sharded_matches_sequential_byte_for_byte(self):
        seeds = [0, 1, 2, 3]
        sequential = sweep_seeds(seeds, jobs=1, params=PARAMS)
        sharded = sweep_seeds(seeds, jobs=4, params=PARAMS)
        assert json.dumps(sequential, sort_keys=True) == \
            json.dumps(sharded, sort_keys=True)

    def test_results_ordered_by_seed(self):
        results = sweep_seeds([3, 1, 2], jobs=2, params=PARAMS)
        assert [cell["seed"] for cell in results] == [1, 2, 3]

    def test_bad_params_surface_as_error_records(self):
        results = sweep_seeds([0], jobs=1,
                              params=dict(PARAMS, schedule="lumpy"))
        assert len(results) == 1
        assert results[0]["seed"] == 0
        assert "unknown schedule" in results[0]["error"]
