"""Tests for the shared unit helpers."""

from repro.units import GIB, KIB, MIB, MS, NS, US, fmt_bytes, fmt_time


def test_size_constants():
    assert KIB == 1024
    assert MIB == 1024 * KIB
    assert GIB == 1024 * MIB


def test_time_constants():
    import pytest

    assert US == pytest.approx(1000 * NS)
    assert MS == pytest.approx(1000 * US)


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(2 * KIB) == "2.0 KiB"
    assert fmt_bytes(int(1.5 * MIB)) == "1.5 MiB"
    assert fmt_bytes(3 * GIB) == "3.0 GiB"


def test_fmt_time():
    assert fmt_time(42.0) == "42.0 s"
    assert fmt_time(149.0) == "2 min 29 s"
    assert fmt_time(0.0021) == "2.1 ms"
    assert fmt_time(7.6e-6) == "7.6 us"
    assert fmt_time(300e-9) == "300 ns"
