"""Tests for the db_bench workload driver."""

import pytest

from repro.apps import KVOptions, MiniRocks, MiniSqlite
from repro.block import SsdDevice
from repro.fs import Ext4
from repro.kernel import Kernel
from repro.libc import Libc
from repro.sim import Environment
from repro.units import KIB, MIB
from repro.workloads import ALL_BENCHMARKS, DbBench, make_key, make_value


def make_env():
    env = Environment()
    kernel = Kernel(env)
    kernel.mount("/", Ext4(env, SsdDevice(env, size=256 * MIB)))
    return env, Libc(kernel)


def test_make_key_fixed_width_and_ordered():
    assert len(make_key(0)) == 16
    assert make_key(5) < make_key(10) < make_key(100)


def test_make_value_size():
    import random
    value = make_value(random.Random(0), 100)
    assert len(value) == 100


def test_full_suite_on_kvstore():
    env, libc = make_env()
    collected = {}

    def body():
        db = yield from MiniRocks.open(libc, "/db", KVOptions(
            sync=True, memtable_bytes=16 * KIB))
        bench = DbBench(env, db, num=200)
        results = yield from bench.run_suite()
        for result in results:
            collected[result.benchmark] = result
        yield from db.close()

    env.run_process(body())
    assert set(collected) == set(ALL_BENCHMARKS)
    for name, result in collected.items():
        assert result.operations == 200, name
        assert result.elapsed > 0, name
        assert result.ops_per_second > 0, name


def test_fill_benchmarks_actually_persist():
    env, libc = make_env()

    def body():
        db = yield from MiniRocks.open(libc, "/db", KVOptions(sync=False))
        bench = DbBench(env, db, num=100)
        yield from bench.fillseq()
        value = yield from db.get(make_key(50))
        yield from db.close()
        return value

    assert env.run_process(body()) is not None


def test_suite_on_sqldb():
    env, libc = make_env()
    collected = {}

    def body():
        db = yield from MiniSqlite.open(libc, "/b.db")
        bench = DbBench(env, db, num=50)
        for name in ("fillrandom", "readrandom", "readseq"):
            result = yield from bench.run(name)
            collected[name] = result
        yield from db.close()

    env.run_process(body())
    assert collected["fillrandom"].micros_per_op > \
        collected["readrandom"].micros_per_op  # sync writes cost more


def test_unknown_benchmark_rejected():
    env, libc = make_env()

    def body():
        db = yield from MiniRocks.open(libc, "/db")
        bench = DbBench(env, db)
        yield from bench.run("writeeverything")

    with pytest.raises(ValueError):
        env.run_process(body())


def test_readwhilewriting_interleaves():
    env, libc = make_env()

    def body():
        db = yield from MiniRocks.open(libc, "/db", KVOptions(sync=False))
        bench = DbBench(env, db, num=200)
        yield from bench.fillseq()
        result = yield from bench.readwhilewriting()
        yield from db.close()
        return result, db.stats.puts

    result, puts = env.run_process(body())
    assert result.operations == 200
    assert puts >= 200 + 50  # fill + background writer
