"""Tests for the FIO-style workload driver."""

import pytest

from repro.block import SsdDevice
from repro.fs import Ext4
from repro.kernel import Kernel
from repro.libc import Libc
from repro.sim import Environment
from repro.units import KIB, MIB
from repro.workloads import FioJob, run_fio


def make_stack(ssd_size=256 * MIB):
    env = Environment()
    kernel = Kernel(env)
    ssd = SsdDevice(env, size=ssd_size)
    kernel.mount("/", Ext4(env, ssd))
    return env, kernel, ssd, Libc(kernel)


def test_randwrite_moves_expected_bytes():
    env, _kernel, _ssd, libc = make_stack()
    job = FioJob(rw="randwrite", block_size=4 * KIB, size=1 * MIB)
    result = run_fio(env, libc, job)
    assert result.bytes_written == 1 * MIB
    assert result.bytes_read == 0
    assert result.write_count == 256
    assert result.elapsed > 0


def test_sequential_write_faster_than_random():
    def bw(rw):
        env, _kernel, _ssd, libc = make_stack()
        job = FioJob(rw=rw, block_size=4 * KIB, size=2 * MIB,
                     file_size=64 * MIB, fsync=0, direct=True)
        return run_fio(env, libc, job).write_bandwidth

    assert bw("write") > 1.5 * bw("randwrite")


def test_fsync_every_write_slower():
    def bw(fsync):
        env, _kernel, _ssd, libc = make_stack()
        job = FioJob(rw="randwrite", block_size=4 * KIB, size=512 * KIB,
                     fsync=fsync, direct=True)
        return run_fio(env, libc, job).write_bandwidth

    assert bw(0) > 3 * bw(1)


def test_read_job_after_layout():
    env, _kernel, _ssd, libc = make_stack()
    job = FioJob(rw="randread", block_size=4 * KIB, size=1 * MIB,
                 file_size=2 * MIB)
    result = run_fio(env, libc, job)
    assert result.bytes_read == 1 * MIB
    assert result.bytes_written == 0
    assert result.read_count == 256


def test_randrw_mix_respected():
    env, _kernel, _ssd, libc = make_stack()
    job = FioJob(rw="randrw", block_size=4 * KIB, size=2 * MIB,
                 rwmixread=70, seed=3)
    result = run_fio(env, libc, job)
    total = result.read_count + result.write_count
    assert total == 512
    assert 0.6 < result.read_count / total < 0.8


def test_numjobs_use_separate_files():
    env, kernel, _ssd, libc = make_stack()
    job = FioJob(rw="write", block_size=4 * KIB, size=256 * KIB, numjobs=3)
    result = run_fio(env, libc, job, "/multi.dat")
    assert result.bytes_written == 3 * 256 * KIB

    def check():
        names = yield from kernel.listdir("/")
        return names

    names = env.run_process(check())
    assert {"multi.dat.0", "multi.dat.1", "multi.dat.2"} <= set(names)


def test_unknown_rw_mode_rejected():
    env, _kernel, _ssd, libc = make_stack()
    job = FioJob(rw="sideways", size=64 * KIB)
    with pytest.raises(ValueError):
        run_fio(env, libc, job)


def test_series_buckets_are_consistent():
    env, _kernel, _ssd, libc = make_stack()
    job = FioJob(rw="randwrite", block_size=4 * KIB, size=1 * MIB,
                 fsync=1, direct=True)
    result = run_fio(env, libc, job)
    series = result.series(interval=result.elapsed / 10)
    assert len(series.time) >= 10
    # Cumulative written is monotone and ends at the total.
    assert series.cumulative_written == sorted(series.cumulative_written)
    assert series.cumulative_written[-1] == result.bytes_written
    # Average throughput from the series matches the aggregate.
    mean_tp = sum(series.write_throughput) / len(series.write_throughput)
    assert mean_tp == pytest.approx(result.write_bandwidth, rel=0.35)


def test_layout_not_counted_in_measurement():
    env, _kernel, ssd, libc = make_stack()
    job = FioJob(rw="randwrite", block_size=4 * KIB, size=256 * KIB,
                 file_size=4 * MIB, fsync=0)
    result = run_fio(env, libc, job)
    # Only the measured 64 writes appear in the result, not the 1024
    # layout writes.
    assert result.write_count == 64
    assert result.completions[0][0] >= 0
