"""Tests for the YCSB workload driver."""

import pytest

from repro.apps import KVOptions, MiniRocks, MiniSqlite
from repro.block import SsdDevice
from repro.fs import Ext4
from repro.kernel import Kernel
from repro.libc import Libc
from repro.sim import Environment
from repro.units import KIB, MIB
from repro.workloads import WORKLOAD_MIXES, YcsbWorkload


def make_env():
    env = Environment()
    kernel = Kernel(env)
    kernel.mount("/", Ext4(env, SsdDevice(env, size=256 * MIB)))
    return env, Libc(kernel)


def test_mixes_sum_to_one():
    for name, mix in WORKLOAD_MIXES.items():
        assert sum(mix.values()) == pytest.approx(1.0), name


def test_load_phase_inserts_all_records():
    env, libc = make_env()

    def body():
        db = yield from MiniRocks.open(libc, "/db", KVOptions(sync=False))
        ycsb = YcsbWorkload(env, db, records=50, operations=10)
        yield from ycsb.load()
        found = 0
        for i in range(50):
            value = yield from db.get(b"%016d" % i)
            if value is not None:
                found += 1
        yield from db.close()
        return found

    assert env.run_process(body()) == 50


@pytest.mark.parametrize("workload", ["A", "B", "C", "D", "E", "F"])
def test_each_workload_runs(workload):
    env, libc = make_env()

    def body():
        db = yield from MiniRocks.open(libc, "/db", KVOptions(
            sync=True, memtable_bytes=8 * KIB))
        ycsb = YcsbWorkload(env, db, records=80, operations=120)
        yield from ycsb.load()
        result = yield from ycsb.run(workload)
        yield from db.close()
        return result

    result = env.run_process(body())
    assert result.workload == workload
    assert result.operations == 120
    assert result.ops_per_second > 0
    assert sum(result.counts.values()) == 120


def test_mix_ratios_roughly_respected():
    env, libc = make_env()

    def body():
        db = yield from MiniRocks.open(libc, "/db", KVOptions(sync=False))
        ycsb = YcsbWorkload(env, db, records=100, operations=1000)
        yield from ycsb.load()
        result = yield from ycsb.run("B")
        yield from db.close()
        return result

    result = env.run_process(body())
    read_fraction = result.counts.get("read", 0) / 1000
    assert 0.9 < read_fraction < 0.99


def test_workload_d_inserts_grow_keyspace():
    env, libc = make_env()

    def body():
        db = yield from MiniRocks.open(libc, "/db", KVOptions(sync=False))
        ycsb = YcsbWorkload(env, db, records=50, operations=400)
        yield from ycsb.load()
        yield from ycsb.run("D")
        yield from db.close()
        return ycsb._inserted

    assert env.run_process(body()) > 50


def test_unknown_workload_rejected():
    env, libc = make_env()

    def body():
        db = yield from MiniRocks.open(libc, "/db")
        ycsb = YcsbWorkload(env, db, records=10, operations=10)
        yield from ycsb.run("Z")

    with pytest.raises(ValueError):
        env.run_process(body())


def test_workload_e_requires_scan_support():
    env, libc = make_env()

    class NoScan:
        def __init__(self, inner):
            self.put = inner.put
            self.get = inner.get

    def body():
        db = yield from MiniRocks.open(libc, "/db")
        ycsb = YcsbWorkload(env, NoScan(db), records=10, operations=10)
        yield from ycsb.run("E")

    with pytest.raises(ValueError, match="scan"):
        env.run_process(body())


def test_ycsb_on_sqldb():
    env, libc = make_env()

    def body():
        db = yield from MiniSqlite.open(libc, "/y.db")
        ycsb = YcsbWorkload(env, db, records=40, operations=60)
        yield from ycsb.load()
        result = yield from ycsb.run("A")
        yield from db.close()
        return result

    result = env.run_process(body())
    assert result.operations == 60


def test_zipf_skew_concentrates_popularity():
    """The hottest key should receive far more than its uniform share."""
    env, libc = make_env()
    reads = {}

    def body():
        db = yield from MiniRocks.open(libc, "/db", KVOptions(sync=False))
        original_get = db.get

        def counting_get(key):
            reads[key] = reads.get(key, 0) + 1
            result = yield from original_get(key)
            return result

        db.get = counting_get
        ycsb = YcsbWorkload(env, db, records=200, operations=2000)
        yield from ycsb.load()
        yield from ycsb.run("C")
        yield from db.close()

    env.run_process(body())
    hottest = max(reads.values())
    assert hottest > 3 * (2000 / 200)  # way above the uniform share
