"""The ycsb driver's seeding contract (docs/WORKLOADS.md).

The multi-tenant arrival engine leans on this driver, so the contract
is pinned explicitly: same seed ⇒ byte-identical op stream and stats;
different seeds (distinct tenants) ⇒ independent streams; the op-log
capture itself never perturbs results.
"""

import pytest

from repro.apps import KVOptions, MiniRocks
from repro.block import SsdDevice
from repro.fs import Ext4
from repro.kernel import Kernel
from repro.libc import Libc
from repro.sim import Environment
from repro.units import MIB
from repro.workloads import YcsbWorkload


def run_once(workload="A", seed=0, capture=True, records=60, operations=150):
    env = Environment()
    kernel = Kernel(env)
    kernel.mount("/", Ext4(env, SsdDevice(env, size=256 * MIB)))
    libc = Libc(kernel)
    op_log = [] if capture else None

    def body():
        db = yield from MiniRocks.open(libc, "/db", KVOptions(sync=False))
        ycsb = YcsbWorkload(env, db, records=records, operations=operations,
                            seed=seed, op_log=op_log)
        yield from ycsb.load()
        result = yield from ycsb.run(workload)
        yield from db.close()
        return result

    result = env.run_process(body())
    return env, result, op_log


@pytest.mark.parametrize("workload", ["A", "B", "D", "F"])
def test_same_seed_byte_identical_stream_and_stats(workload):
    _env1, result1, log1 = run_once(workload, seed=11)
    _env2, result2, log2 = run_once(workload, seed=11)
    assert log1 == log2          # op kinds, keys, AND value bytes
    assert result1.counts == result2.counts
    assert result1.elapsed == result2.elapsed


def test_same_seed_identical_clock():
    env1, _r1, _log1 = run_once("A", seed=3)
    env2, _r2, _log2 = run_once("A", seed=3)
    assert env1.now == env2.now
    assert env1.events_dispatched == env2.events_dispatched


def test_distinct_seeds_independent_streams():
    _env1, _r1, log_a = run_once("A", seed=1)
    _env2, _r2, log_b = run_once("A", seed=2)
    assert log_a != log_b
    # Independence, not merely inequality: the key sequences decorrelate.
    keys_a = [key for _op, key, _value in log_a]
    keys_b = [key for _op, key, _value in log_b]
    agreement = sum(1 for a, b in zip(keys_a, keys_b) if a == b)
    assert agreement < len(keys_a) * 0.5


def test_op_log_capture_does_not_perturb_results():
    env_with, result_with, log = run_once("F", seed=5, capture=True)
    env_without, result_without, none_log = run_once("F", seed=5,
                                                     capture=False)
    assert none_log is None
    assert len(log) == result_with.operations
    assert result_with.counts == result_without.counts
    assert result_with.elapsed == result_without.elapsed
    assert env_with.now == env_without.now


def test_op_log_entries_are_well_formed():
    _env, result, log = run_once("A", seed=9)
    assert len(log) == result.operations
    for operation, key, value in log:
        assert operation in ("read", "update", "insert", "scan", "rmw")
        assert isinstance(key, bytes) and len(key) == 16
        if operation in ("update", "insert", "rmw"):
            assert isinstance(value, bytes) and value
        else:
            assert value is None
