#!/usr/bin/env python
"""Wall-clock benchmark of the simulation engine (events/sec, MiB/s).

Drives the full ``nvcache+ssd`` stack with fio-like and db_bench-like
workloads and measures how fast the *simulator* runs on the host: events
dispatched per wall-clock second and simulated I/O bytes moved per
wall-clock second. Simulated-time results (``sim_seconds``, stats) are
recorded too, so a run doubles as a semantic regression check: engine
optimizations must leave them bit-identical.

Results live in ``BENCH_engine.json`` at the repo root. Each workload
keeps a ``before`` snapshot (the engine as of the first benchmarked
commit) and an ``after`` snapshot (the current engine), and the file
carries a bounded ``history`` list — the last ``HISTORY_LIMIT``
recorded runs, newest last, each stamped with its commit and UTC
timestamp — so the perf trajectory is tracked in-repo, not just its
endpoints. ``--check`` baselines against the newest history entry
(falling back to ``after`` for pre-history files).

Usage::

    PYTHONPATH=src python tools/bench_engine.py             # measure + print
    PYTHONPATH=src python tools/bench_engine.py --update    # rewrite 'after'
    PYTHONPATH=src python tools/bench_engine.py --check     # CI: fail if
                                                            # events/sec fell
                                                            # >20% vs committed
    PYTHONPATH=src python tools/bench_engine.py --profile fio_seq_write
    PYTHONPATH=src python tools/bench_engine.py --microbench  # heap vs
                                                              # calendar queue
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from datetime import datetime, timezone

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_PATH = os.path.join(REPO_ROOT, "BENCH_engine.json")

sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.harness.systems import Scale, build_stack  # noqa: E402
from repro.workloads.db_bench import DbBench  # noqa: E402
from repro.workloads.fio import FioJob, run_fio  # noqa: E402

MIB = float(1024 * 1024)

#: Regression tolerance for --check (events/sec may fall this much
#: before the check fails; wall-clock numbers are noisy).
CHECK_TOLERANCE = 0.20

SCALE_FACTOR = 512

#: Recorded runs kept in BENCH_engine.json's ``history`` (oldest are
#: dropped); bounded so the committed file cannot grow without limit.
HISTORY_LIMIT = 10


def _events_dispatched(env) -> int:
    """Dispatched-event count; falls back to scheduled-count on engines
    that predate the ``events_dispatched`` counter."""
    count = getattr(env, "events_dispatched", None)
    if count is not None:
        return count
    return getattr(env, "_bench_scheduled", 0)


def _instrument(env) -> None:
    """Count scheduled callbacks on engines without a dispatch counter."""
    if hasattr(env, "events_dispatched"):
        return
    env._bench_scheduled = 0
    original = env.schedule

    def counting_schedule(delay, callback):
        env._bench_scheduled += 1
        original(delay, callback)

    env.schedule = counting_schedule


def bench_fio(rw: str, size_mib: int = 8) -> dict:
    """One fio job over nvcache+ssd; returns the measurement record."""
    stack = build_stack("nvcache+ssd", scale=Scale(SCALE_FACTOR))
    _instrument(stack.env)
    job = FioJob(rw=rw, block_size=4096, size=size_mib * 1024 * 1024,
                 fsync=1, direct=True)
    wall_start = time.perf_counter()
    result = run_fio(stack.env, stack.libc, job)
    wall = time.perf_counter() - wall_start
    events = _events_dispatched(stack.env)
    sim_bytes = result.bytes_written + result.bytes_read
    return {
        "wall_seconds": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall, 1),
        "sim_seconds": stack.env.now,
        "sim_mib": round(sim_bytes / MIB, 3),
        "sim_mib_per_wall_sec": round(sim_bytes / MIB / wall, 2),
        "ops": result.write_count + result.read_count,
        "nvcache_entries_created": stack.nvcache.stats.entries_created,
    }


def bench_db_bench(num: int = 3000) -> dict:
    """db_bench fillseq + readrandom on MiniRocks over nvcache+ssd."""
    from repro.apps.kvstore.db import MiniRocks

    stack = build_stack("nvcache+ssd", scale=Scale(SCALE_FACTOR))
    _instrument(stack.env)
    env = stack.env
    results = {}

    def body():
        db = yield from MiniRocks.open(stack.libc, "/db")
        bench = DbBench(env, db, num=num, seed=7)
        results["fillseq"] = yield from bench.fillseq()
        results["readrandom"] = yield from bench.readrandom()
        yield from db.close()

    wall_start = time.perf_counter()
    env.run_process(body(), name="db_bench")
    wall = time.perf_counter() - wall_start
    events = _events_dispatched(env)
    sim_bytes = sum(r.bytes_moved for r in results.values())
    return {
        "wall_seconds": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall, 1),
        "sim_seconds": env.now,
        "sim_mib": round(sim_bytes / MIB, 3),
        "sim_mib_per_wall_sec": round(sim_bytes / MIB / wall, 2),
        "ops": sum(r.operations for r in results.values()),
        "nvcache_entries_created": stack.nvcache.stats.entries_created,
    }


WORKLOADS = {
    "fio_seq_write": lambda: bench_fio("write"),
    "fio_randrw": lambda: bench_fio("randrw", size_mib=4),
    "db_bench": lambda: bench_db_bench(),
}


def profile_workload(name: str, top: int = 30) -> None:
    """Run one workload under cProfile and print the ``top`` entries by
    cumulative time. Ordering is deterministic: ties on cumulative time
    break on the printed function name, so two profiles of the same
    engine diff cleanly even when the timings jitter."""
    import cProfile
    import pstats

    runner = WORKLOADS[name]
    profiler = cProfile.Profile()
    profiler.enable()
    record = runner()
    profiler.disable()
    print(f"profile: {name} ({record['events']} events, "
          f"{record['wall_seconds']:.3f}s wall)")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative", "name")
    stats.print_stats(top)


def scheduler_microbench(n: int = 200_000) -> dict:
    """Heap vs calendar queue in isolation: the same deterministic
    push/pop schedule (97% short holds, 3% far-future "ladder overflow"
    times, working set ~64 pending entries — the engine's shape) driven
    through ``heapq`` and through :class:`repro.sim.CalendarQueue`."""
    import heapq
    import random

    from repro.sim import CalendarQueue

    rng = random.Random(42)
    delays = [rng.choice((1e-6, 2e-6, 5e-6, 1e-3))
              if rng.random() < 0.97 else rng.uniform(1.0, 100.0)
              for _ in range(n)]

    def drive(push, pop, length) -> float:
        start = time.perf_counter()
        now = 0.0
        for seq, delay in enumerate(delays):
            push((now + delay, seq, None, ()))
            if length() > 64:
                now = pop()[0]
        while length():
            now = pop()[0]
        return time.perf_counter() - start

    heap = []
    heap_wall = drive(lambda e: heapq.heappush(heap, e),
                      lambda: heapq.heappop(heap), lambda: len(heap))
    queue = CalendarQueue()
    calendar_wall = drive(queue.push, queue.pop, queue.__len__)
    ops = 2 * n
    print(f"scheduler microbenchmark ({n} entries, push+pop)")
    print(f"  binary heap   : {ops / heap_wall:12,.0f} ops/s "
          f"({heap_wall:.3f}s)")
    print(f"  calendar queue: {ops / calendar_wall:12,.0f} ops/s "
          f"({calendar_wall:.3f}s)")
    print(f"  calendar/heap : {heap_wall / calendar_wall:.2f}x")
    return {"heap_ops_per_sec": round(ops / heap_wall, 1),
            "calendar_ops_per_sec": round(ops / calendar_wall, 1),
            "speedup": round(heap_wall / calendar_wall, 2)}


def measure_all() -> dict:
    measurements = {}
    for name, runner in WORKLOADS.items():
        print(f"  running {name} ...", flush=True)
        measurements[name] = runner()
    return measurements


def _current_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True,
            timeout=10).stdout.strip() or "unknown"
    except Exception:  # noqa: BLE001 — git absent / not a checkout
        return "unknown"


def append_history(results: dict, measured: dict) -> None:
    """Record this run (headline numbers only) at the end of the
    bounded history list; oldest entries fall off past HISTORY_LIMIT."""
    entry = {
        "commit": _current_commit(),
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "workloads": {
            name: {"events": record["events"],
                   "events_per_sec": record["events_per_sec"],
                   "sim_mib_per_wall_sec": record["sim_mib_per_wall_sec"],
                   "wall_seconds": record["wall_seconds"]}
            for name, record in measured.items()},
    }
    history = results.setdefault("history", [])
    history.append(entry)
    del history[:-HISTORY_LIMIT]


def check_reference(results: dict, name: str):
    """The events/sec baseline ``--check`` compares against: the newest
    history entry that covers ``name``, else the legacy ``after``
    snapshot. Returns ``(events_per_sec, source)`` or ``(None, None)``."""
    for entry in reversed(results.get("history", [])):
        record = entry.get("workloads", {}).get(name)
        if record and record.get("events_per_sec"):
            return (record["events_per_sec"],
                    f"history@{entry.get('commit', '?')}")
    after = results["workloads"].get(name, {}).get("after")
    if after and after.get("events_per_sec"):
        return after["events_per_sec"], "after"
    return None, None


def load_results() -> dict:
    if not os.path.exists(RESULTS_PATH):
        return {"schema": 1, "scale": SCALE_FACTOR, "workloads": {}}
    with open(RESULTS_PATH) as handle:
        return json.load(handle)


def save_results(results: dict) -> None:
    with open(RESULTS_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def print_table(results: dict) -> None:
    header = (f"{'workload':<16} {'events/s':>12} {'MiB/s (sim)':>12} "
              f"{'wall s':>8} {'vs before':>10}")
    print(header)
    print("-" * len(header))
    for name, entry in results["workloads"].items():
        after = entry.get("after") or {}
        before = entry.get("before") or {}
        speedup = ""
        if before.get("events_per_sec") and after.get("events_per_sec"):
            speedup = f"{after['events_per_sec'] / before['events_per_sec']:.2f}x"
        print(f"{name:<16} {after.get('events_per_sec', 0):>12,.0f} "
              f"{after.get('sim_mib_per_wall_sec', 0):>12,.2f} "
              f"{after.get('wall_seconds', 0):>8.2f} {speedup:>10}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the 'after' snapshots in BENCH_engine.json")
    parser.add_argument("--baseline", action="store_true",
                        help="record this run as the 'before' snapshots")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if events/sec regressed more than "
                             f"{CHECK_TOLERANCE:.0%} vs BENCH_engine.json")
    parser.add_argument("--profile", metavar="WORKLOAD", default=None,
                        choices=sorted(WORKLOADS),
                        help="run one workload under cProfile and print the "
                             "top functions by cumulative time")
    parser.add_argument("--top", type=int, default=30,
                        help="rows to print with --profile (default 30)")
    parser.add_argument("--microbench", action="store_true",
                        help="run the scheduler microbenchmark "
                             "(heap vs calendar queue) and exit")
    args = parser.parse_args(argv)

    if args.profile:
        profile_workload(args.profile, top=args.top)
        return 0
    if args.microbench:
        scheduler_microbench()
        return 0

    results = load_results()
    print(f"engine benchmark (REPRO scale {SCALE_FACTOR})", flush=True)
    measured = measure_all()

    if args.check:
        failures = []
        for name, record in measured.items():
            reference, source = check_reference(results, name)
            if reference is None:
                continue
            floor = reference * (1.0 - CHECK_TOLERANCE)
            status = "ok" if record["events_per_sec"] >= floor else "REGRESSED"
            print(f"  {name}: {record['events_per_sec']:,.0f} ev/s "
                  f"({source} {reference:,.0f}, "
                  f"floor {floor:,.0f}) {status}")
            if record["events_per_sec"] < floor:
                failures.append(name)
        if failures:
            print(f"FAIL: events/sec regressed >{CHECK_TOLERANCE:.0%} on: "
                  + ", ".join(failures))
            return 1
        print("OK: no engine-speed regression")
        return 0

    key = "before" if args.baseline else "after"
    for name, record in measured.items():
        entry = results["workloads"].setdefault(name, {})
        entry[key] = record
        before = entry.get("before")
        after = entry.get("after")
        if before and after and before.get("events_per_sec"):
            entry["speedup_events_per_sec"] = round(
                after["events_per_sec"] / before["events_per_sec"], 2)
    if args.update or args.baseline:
        append_history(results, measured)
        save_results(results)
        print(f"wrote {RESULTS_PATH} "
              f"({len(results['history'])}/{HISTORY_LIMIT} history entries)")
    print_table(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
