#!/usr/bin/env python
"""What-if capacity explorer: sweep a config grid, diff attributions.

Runs the same seeded multi-tenant traffic across every cell of a
declarative configuration grid (repro.capacity, docs/CAPACITY.md) and
reports where the critical-path latency lives in each cell — and, more
usefully, where it *moves* between cells:

- the default report: per-cell table (end-to-end critical path, request
  p99, Jain index, dominant segment) plus the detected knees,
- ``--diff A B`` the exact per-segment attribution diff between two
  cells (signed deltas sum to the end-to-end delta, to the picosecond),
- ``--knee`` only the dominant-segment flip points per scale axis,
- ``--check`` gate the grid's documented expectations (exit 1 on any
  miss), ``--json`` the machine payload, ``--html PATH`` the heatmap,
- ``--jobs N`` shard cells over worker processes (byte-identical to
  sequential).

Exit codes: 0 success, 1 a ``--check`` expectation failed, 2 usage or
runtime error.

Usage::

    PYTHONPATH=src python tools/capacity_report.py
    PYTHONPATH=src python tools/capacity_report.py --jobs 4 --check
    PYTHONPATH=src python tools/capacity_report.py \\
        --diff tenants=4,log_kib=64 tenants=4,log_kib=128
    PYTHONPATH=src python tools/capacity_report.py --grid explore \\
        --jobs 8 --html /tmp/capacity.html
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.capacity import (GRIDS, GridSpec, check_expectations,  # noqa: E402
                            detect_knees, diff_cells, format_diff,
                            format_knees, format_table, make_grid,
                            register_sweep_metrics, run_grid, to_html)
from repro.obs import MetricsRegistry  # noqa: E402


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="sweep a config grid, report attribution and knees")
    parser.add_argument("--grid", default="demo", choices=sorted(GRIDS),
                        help="named grid to sweep (default: demo)")
    parser.add_argument("--grid-file", metavar="PATH", default=None,
                        help="load a GridSpec from JSON instead of --grid")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the named grid's traffic")
    parser.add_argument("--jobs", type=int, default=1,
                        help="shard cells over N worker processes")
    parser.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                        help="print the exact attribution diff between "
                             "two cell ids")
    parser.add_argument("--knee", action="store_true",
                        help="print only the dominant-segment knees")
    parser.add_argument("--check", action="store_true",
                        help="assert the grid's documented expectations; "
                             "exit 1 on any failure")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable payload on stdout")
    parser.add_argument("--html", metavar="PATH", default=None,
                        help="write the heatmap as a self-contained "
                             "HTML file")
    parser.add_argument("--top", type=int, default=12,
                        help="segments shown per diff (default: 12)")
    return parser.parse_args(argv)


def load_spec(args) -> GridSpec:
    if args.grid_file:
        return GridSpec.from_json(args.grid_file)
    return make_grid(args.grid, seed=args.seed)


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    try:
        spec = load_spec(args)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"cannot load grid: {exc}", file=sys.stderr)
        return 2

    registry = MetricsRegistry()
    metrics = register_sweep_metrics(registry)
    try:
        cells = run_grid(spec, jobs=args.jobs, metrics=metrics)
    except Exception as exc:  # noqa: BLE001 — CLI boundary
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    knees = detect_knees(spec, cells)
    metrics.knees_found.inc(len(knees))

    if args.diff:
        by_id = {cell["cell_id"]: cell for cell in cells}
        missing = [cid for cid in args.diff
                   if cid not in by_id or "error" in by_id.get(cid, {})]
        if missing:
            print(f"unknown or failed cell id(s): {', '.join(missing)}; "
                  f"grid has: {', '.join(spec.cell_ids())}",
                  file=sys.stderr)
            return 2
        diff = diff_cells(by_id[args.diff[0]], by_id[args.diff[1]])
        metrics.diffs_rendered.inc()
        if args.json:
            print(json.dumps(diff, indent=2, sort_keys=True))
        else:
            print(format_diff(diff, top=args.top))
        if args.check and not diff["exact"]:
            print("check FAILED: diff is not exact", file=sys.stderr)
            return 1
        return 0

    failures = check_expectations(spec, cells, knees) if args.check else []

    if args.html:
        with open(args.html, "w") as handle:
            handle.write(to_html(spec, cells, knees))
        if not args.json:
            print(f"wrote {args.html} ({len(cells)} cells)")

    if args.json:
        payload = {
            "grid": spec.to_dict(),
            "cells": cells,
            "knees": knees,
            "check": {"enabled": args.check, "failures": failures},
            "capacity_metrics": {
                name: metric.value()
                for name in registry.names() if name.startswith("capacity.")
                for metric in [registry.get(name)]},
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.knee:
        print(format_knees(knees))
    elif not args.html:
        print(format_table(spec, cells))
        print()
        print(format_knees(knees))

    if args.check:
        if failures:
            print()
            print(f"check FAILED ({len(failures)} expectation(s)):",
                  file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        if not args.json:
            print()
            print(f"check OK: {len(spec.expectations)} expectation(s), "
                  f"{len(cells)} cells, all diffs exact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
