#!/usr/bin/env python
"""Docs drift check: every registered metric must be documented.

Builds the instrumented stacks that together register every metric the
tree defines (``nvcache+ssd`` covers nvmm/block.ssd0/kernel/fs/core,
``dm-writecache+ssd`` adds the dm-writecache gauges, a bare
:class:`~repro.block.HddDevice` adds ``block.hdd0.*``), unions their
registry names, and fails if any exact name is missing from the scanned
docs (``docs/OBSERVABILITY.md``, ``docs/MULTITENANCY.md`` which owns
the multi-tenant vocabulary, ``docs/FUZZING.md`` which owns ``fuzz.*``,
``docs/POLICIES.md``, and ``docs/CAPACITY.md`` which owns
``capacity.*``). The reverse direction is checked too: a documented
name that no stack registers is stale and also fails.

The tracing vocabulary is held to the same contract: every span name in
``repro.sim.SPAN_NAMES`` and every critical-path segment in
``repro.sim.SEGMENT_NAMES`` must appear in the doc, and every documented
two-segment ``layer.name`` must be an emitted span or segment.

Run by the ``docs_check`` smoke tests (``smoke/``, outside tier-1) and
usable standalone::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
#: Scanned docs. OBSERVABILITY.md is the single-tenant vocabulary;
#: MULTITENANCY.md owns the ``tenancy.*`` / ``core.qos.*`` surface and
#: the QoS wait segments; FUZZING.md owns ``fuzz.*``; POLICIES.md owns
#: ``core.paging.*`` and the paging-mode trace names; CAPACITY.md owns
#: ``capacity.*``. Union of all five = the documented set.
DOC_PATHS = [os.path.join(REPO_ROOT, "docs", "OBSERVABILITY.md"),
             os.path.join(REPO_ROOT, "docs", "MULTITENANCY.md"),
             os.path.join(REPO_ROOT, "docs", "FUZZING.md"),
             os.path.join(REPO_ROOT, "docs", "POLICIES.md"),
             os.path.join(REPO_ROOT, "docs", "CAPACITY.md")]

sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.block import HddDevice, SsdDevice  # noqa: E402
from repro.capacity import register_sweep_metrics  # noqa: E402
from repro.faults import BlockFaultInjector  # noqa: E402
from repro.fuzz import FuzzEngine  # noqa: E402
from repro.harness.systems import Scale, build_stack  # noqa: E402
from repro.obs import MetricsRegistry  # noqa: E402
from repro.parallel import register_engine_metrics  # noqa: E402
from repro.sim import Environment, SEGMENT_NAMES, SPAN_NAMES  # noqa: E402
from repro.tenancy import TrafficEngine  # noqa: E402
from repro.tenancy.clients import TenantSpec  # noqa: E402

#: Matches backticked metric names: a known layer prefix followed by at
#: least two more segments. Anchoring on the layer set keeps module
#: paths (`repro.fs.ext4`) out of the documented-name set.
DOC_NAME_PATTERN = re.compile(
    r"`((?:nvmm|block|kernel|fs|core|faults|parallel|obs|tenancy|fuzz"
    r"|capacity)\.[a-z0-9_]+(?:\.[a-z0-9_]+)+)`")

#: Matches backticked span/segment names: exactly two segments with a
#: tracing layer prefix (`libc.pwrite`, `block.queue_wait`). Metric
#: names always have three or more segments, so the two vocabularies
#: cannot collide.
TRACE_NAME_PATTERN = re.compile(
    r"`((?:libc|core|kernel|fs|block|nvmm)\.[a-z0-9_]+)`")


def registered_names() -> set:
    """Union of metric names across every instrumented component."""
    names = set()
    for system in ("nvcache+ssd", "dm-writecache+ssd"):
        stack = build_stack(system, Scale(4096), metrics=True)
        names.update(stack.metrics.names())
    # The paging-mode design registers core.paging.* instead of the
    # log/read-cache scopes (docs/POLICIES.md).
    stack = build_stack("nvcache+ssd", Scale(4096), metrics=True,
                        cache_mode="paging")
    names.update(stack.metrics.names())
    # Tracer self-metrics (obs.trace.*) exist once a stack is built with
    # both observability and tracing on.
    stack = build_stack("nvcache+ssd", Scale(4096), metrics=True,
                        tracing=True)
    names.update(stack.metrics.names())
    env = Environment()
    env.metrics = MetricsRegistry()
    HddDevice(env)
    names.update(env.metrics.names())
    # Fault-injection counters live under faults.<device>.* and only
    # exist once an injector is armed.
    env = Environment()
    env.metrics = MetricsRegistry()
    BlockFaultInjector().arm(SsdDevice(env, size=1 << 20, name="ssd0"))
    names.update(env.metrics.names())
    # Shard-engine counters live under parallel.engine.* and exist once
    # any ShardEngine is built with a registry (repro.parallel).
    registry = MetricsRegistry()
    register_engine_metrics(registry)
    names.update(registry.names())
    # The multi-tenant surface: tenancy.engine.* / tenancy.fairness.* /
    # tenancy.class.* from the traffic engine plus core.qos.* from the
    # QoS manager, all registered at build() time.
    engine = TrafficEngine([TenantSpec(tenant_id="doc0", kind="fio",
                                       operations=1)],
                           workers=1, metrics=True)
    engine.build()
    names.update(engine.stack.metrics.names())
    # Fuzz campaign counters live under fuzz.* and exist once a
    # FuzzEngine is built with a registry (repro.fuzz).
    registry = MetricsRegistry()
    FuzzEngine(registry=registry)
    names.update(registry.names())
    # Capacity-sweep self-metrics live under capacity.sweep.* and exist
    # once a sweep attaches to a registry (repro.capacity).
    registry = MetricsRegistry()
    register_sweep_metrics(registry)
    names.update(registry.names())
    return names


def documented_names(doc_text: str) -> set:
    return set(DOC_NAME_PATTERN.findall(doc_text))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable summary on stdout "
                             "(for tools/ci_run.py aggregation)")
    args = parser.parse_args(argv)
    doc_text = ""
    for path in DOC_PATHS:
        if not os.path.exists(path):
            print(f"FAIL: {path} does not exist", file=sys.stderr)
            return 1
        with open(path) as handle:
            doc_text += handle.read() + "\n"
    registered = registered_names() | set(SPAN_NAMES) | set(SEGMENT_NAMES)
    documented = documented_names(doc_text) \
        | set(TRACE_NAME_PATTERN.findall(doc_text))

    undocumented = sorted(registered - documented)
    stale = sorted(documented - registered)
    if args.json:
        print(json.dumps({
            "ok": not undocumented and not stale,
            "registered": len(registered),
            "documented": len(documented),
            "undocumented": undocumented,
            "stale": stale,
        }, indent=2, sort_keys=True))
        return 1 if undocumented or stale else 0
    if undocumented:
        print("FAIL: registered metrics missing from the docs "
              "(OBSERVABILITY.md / MULTITENANCY.md / FUZZING.md / "
              "POLICIES.md / CAPACITY.md):", file=sys.stderr)
        for name in undocumented:
            print(f"  {name}", file=sys.stderr)
    if stale:
        print("FAIL: documented metrics no component registers (stale?):",
              file=sys.stderr)
        for name in stale:
            print(f"  {name}", file=sys.stderr)
    if undocumented or stale:
        return 1
    print(f"OK: {len(registered)} registered metrics, all documented, "
          "none stale")
    return 0


if __name__ == "__main__":
    sys.exit(main())
