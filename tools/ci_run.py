#!/usr/bin/env python
"""CI suite orchestrator: one entry point for every gate the workflow
runs, reproducible locally with the same commands and exit codes.

Suites (``--suite``, repeatable):

- ``lint``    — ``ruff check`` (+ format check, advisory); degrades to a
  ``compileall`` syntax pass where ruff is not installed.
- ``tier1``   — the ROADMAP tier-1 gate: ``PYTHONPATH=src python -m
  pytest -x -q``.
- ``docs``    — ``smoke -m docs_check`` (docs drift, dashboards,
  examples).
- ``crash``   — ``smoke -m crash_smoke`` (budgeted crash sweeps; honours
  ``--jobs`` via ``REPRO_CRASH_JOBS``).
- ``sweeps``  — the four crash workloads explored end-to-end with
  ``--check --json``, plus the three phased workloads swept again in
  snapshot warm-start mode (``--warm-start``, docs/CRASH_TESTING.md),
  fanned out across ``--jobs`` worker processes by ``repro.parallel``
  and aggregated from their JSON summaries. The warm/cold and
  sequential/sharded byte-identity gates live in ``smoke -m
  crash_smoke`` and ``tests/faults/test_snapshot.py``.
- ``tenancy`` — the multi-tenant fairness gate (docs/MULTITENANCY.md):
  a 64-tenant bursty quota-constrained smoke through
  ``tools/tenant_report.py --check`` (every request served, Jain index
  and starvation gauge within thresholds), then ``--verify-sharding``
  proving a 4-seed sweep is byte-identical sharded over ``--jobs 4``
  vs sequential.
- ``fuzz``    — the coverage-guided fuzzing gate (docs/FUZZING.md): a
  fixed-seed budgeted campaign through ``tools/fuzz.py run --check``,
  the collector-purity gate (the coverage hook must not perturb
  simulated clocks or stats), and the jobs-1-vs-jobs-4 byte-identity
  pin from ``tests/fuzz/test_determinism.py``. With
  ``REPRO_FUZZ_CORPUS=<dir>`` the campaign writes its corpus there and
  seeds itself from whatever a previous run (or the CI cache) left
  behind (``--reuse-corpus``, docs/FUZZING.md).
- ``policy``  — the policy-lab gate (docs/POLICIES.md): **required** —
  ``tools/policy_report.py --check`` asserts the Logging-vs-Paging
  crossover lands on the expected winner per mix, the paging-mode
  crash sweep (``tools/crash_explore.py --workload fio-paging
  --check``) proves the five durability invariants hold for the page
  table, and the mode-equivalence property tests pin logging/paging
  byte-identity after recovery.
- ``capacity`` — the capacity-explorer gate (docs/CAPACITY.md):
  **required** — ``tools/capacity_report.py --check --jobs 2`` sweeps
  the seeded demo grid sharded over two workers and asserts its
  documented expectations (dominant segments, the tenant-axis knee,
  where latency moved when the log doubled) plus the standing
  invariants (every cell completes, every diff exact); the
  sequential-vs-sharded byte-identity pins live in
  ``tests/capacity/test_determinism.py`` inside tier 1.
- ``bench``   — ``tools/bench_engine.py --check``: **required** — exit 1
  on a >20% events/sec regression against the newest history entry in
  the committed ``BENCH_engine.json``. The threshold is wide enough to
  clear shared-runner noise; a genuine engine slowdown must not merge
  silently (re-baseline deliberately with ``--update`` instead).
- ``all``     — everything above, in that order.

Examples::

    PYTHONPATH=src python tools/ci_run.py --suite tier1
    python tools/ci_run.py --suite sweeps --jobs 4 --json
    python tools/ci_run.py --suite all --junit ci.xml
    python tools/ci_run.py --suite tier1 --dry-run

``--json`` reports per-step wall-clock seconds, the run's total wall
clock, and any cache-hit stats a step emitted as ``::cache::``-marked
JSON lines (the fuzz corpus reuse path emits one), so CI caching is
observable straight from job logs.

Exit codes: **0** every required step passed (advisory failures are
reported but do not fail the run), **1** a required step failed,
**2** usage or orchestrator error.
"""

from __future__ import annotations

import argparse
import json
import os
import shlex
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional
from xml.sax.saxutils import escape

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.parallel import ShardEngine, Task  # noqa: E402
from repro.parallel.procs import run_command  # noqa: E402

SRC_ENV = {"PYTHONPATH": "src"}


@dataclass
class Step:
    """One command of a suite. ``fanout`` steps within a suite run
    concurrently through the shard engine; others run sequentially.
    ``advisory`` failures are reported but do not affect the exit code."""

    name: str
    argv: List[str]
    env_extra: Dict[str, str] = field(default_factory=dict)
    advisory: bool = False
    fanout: bool = False
    timeout: Optional[float] = None

    def display(self) -> str:
        prefix = "".join(f"{key}={value} "
                         for key, value in sorted(self.env_extra.items()))
        return prefix + shlex.join(self.argv)


@dataclass
class StepResult:
    step: Step
    returncode: int
    seconds: float
    stdout: str = ""
    stderr: str = ""

    @property
    def ok(self) -> bool:
        return self.returncode == 0

    @property
    def status(self) -> str:
        if self.ok:
            return "pass"
        return "warn" if self.step.advisory else "FAIL"

    def cache_stats(self) -> List[Dict]:
        """Cache-hit stats the step self-reported as ``::cache:: {json}``
        lines (e.g. ``tools/fuzz.py run --reuse-corpus``)."""
        stats = []
        for line in (self.stdout + "\n" + self.stderr).splitlines():
            line = line.strip()
            if not line.startswith("::cache::"):
                continue
            try:
                stats.append(json.loads(line[len("::cache::"):]))
            except json.JSONDecodeError:
                continue
        return stats


def _py(*argv: str) -> List[str]:
    return [sys.executable, *argv]


def _ruff_available() -> bool:
    import importlib.util
    import shutil
    return (shutil.which("ruff") is not None
            or importlib.util.find_spec("ruff") is not None)


def lint_steps() -> List[Step]:
    if _ruff_available():
        return [
            Step("ruff-check", ["ruff", "check", "."]),
            Step("ruff-format", ["ruff", "format", "--check", "."],
                 advisory=True),
        ]
    return [Step("compileall (ruff unavailable)",
                 _py("-m", "compileall", "-q", "src", "tools", "benchmarks",
                     "smoke", "tests", "examples"))]


def fuzz_corpus_args() -> List[str]:
    """Corpus-reuse arguments for the fuzz campaign when the caller
    (the CI workflow, via ``actions/cache``) designates a corpus
    directory through ``REPRO_FUZZ_CORPUS``."""
    corpus = os.environ.get("REPRO_FUZZ_CORPUS")
    if not corpus:
        return []
    return ["--corpus", corpus, "--reuse-corpus"]


def suite_steps(suite: str, jobs: int) -> List[Step]:
    crash_budgets = {"fio": None, "fio-mixed": None, "db_bench": None,
                     "kvstore": "60"}
    sweeps = []
    for workload in ("fio", "fio-mixed", "db_bench", "kvstore"):
        argv = _py("tools/crash_explore.py", "--workload", workload,
                   "--check", "--json")
        if crash_budgets[workload]:
            argv += ["--budget", crash_budgets[workload]]
        sweeps.append(Step(f"sweep-{workload}", argv, env_extra=dict(SRC_ENV),
                           fanout=True, timeout=600))
    for workload in ("fio", "db_bench", "kvstore"):
        argv = _py("tools/crash_explore.py", "--workload", workload,
                   "--warm-start", "--check", "--json")
        sweeps.append(Step(f"sweep-{workload}-warm", argv,
                           env_extra=dict(SRC_ENV), fanout=True, timeout=600))
    suites = {
        "lint": lint_steps(),
        "tier1": [Step("tier1-pytest", _py("-m", "pytest", "-x", "-q"),
                       env_extra=dict(SRC_ENV))],
        "docs": [Step("smoke-docs", _py("-m", "pytest", "smoke", "-m",
                                        "docs_check", "-q"),
                      env_extra=dict(SRC_ENV))],
        "crash": [Step("smoke-crash", _py("-m", "pytest", "smoke", "-m",
                                          "crash_smoke", "-q"),
                       env_extra={**SRC_ENV,
                                  "REPRO_CRASH_JOBS": str(jobs)})],
        "sweeps": sweeps,
        "tenancy": [
            Step("tenancy-fairness",
                 _py("tools/tenant_report.py", "--check", "--json",
                     "--tenants", "64", "--quota", "8",
                     "--schedule", "bursty"),
                 env_extra=dict(SRC_ENV), timeout=600),
            Step("tenancy-sharding",
                 _py("tools/tenant_report.py", "--verify-sharding",
                     "--seeds", "4", "--jobs", "4"),
                 env_extra=dict(SRC_ENV), timeout=600),
        ],
        "fuzz": [
            Step("fuzz-campaign",
                 _py("tools/fuzz.py", "run", "--seed", "0",
                     "--cases", "64", "--check", *fuzz_corpus_args()),
                 env_extra=dict(SRC_ENV), timeout=600),
            Step("fuzz-collector-gate",
                 _py("-m", "pytest", "tests/fuzz/test_coverage.py", "-q"),
                 env_extra=dict(SRC_ENV), timeout=600),
            Step("fuzz-determinism",
                 _py("-m", "pytest", "tests/fuzz/test_determinism.py", "-q"),
                 env_extra=dict(SRC_ENV), timeout=600),
        ],
        "policy": [
            Step("policy-crossover",
                 _py("tools/policy_report.py", "--check"),
                 env_extra=dict(SRC_ENV), timeout=600),
            Step("policy-paging-sweep",
                 _py("tools/crash_explore.py", "--workload", "fio-paging",
                     "--check", "--json"),
                 env_extra=dict(SRC_ENV), timeout=600),
            Step("policy-equivalence",
                 _py("-m", "pytest", "tests/core/test_mode_equivalence.py",
                     "-q"),
                 env_extra=dict(SRC_ENV), timeout=600),
        ],
        "capacity": [Step("capacity-grid",
                          _py("tools/capacity_report.py", "--check",
                              "--jobs", "2"),
                          env_extra=dict(SRC_ENV), timeout=600)],
        "bench": [Step("engine-bench", _py("tools/bench_engine.py",
                                           "--check"),
                       env_extra=dict(SRC_ENV))],
    }
    if suite == "all":
        return (suites["lint"] + suites["tier1"] + suites["docs"]
                + suites["crash"] + suites["sweeps"] + suites["tenancy"]
                + suites["fuzz"] + suites["policy"] + suites["capacity"]
                + suites["bench"])
    if suite not in suites:
        raise KeyError(suite)
    return suites[suite]


def run_steps(steps: List[Step], jobs: int) -> List[StepResult]:
    """Sequential steps run in order; consecutive ``fanout`` steps are
    batched through the shard engine (which itself degrades to
    sequential if the host cannot fork — exit codes are data either
    way, so nothing changes but wall clock)."""
    results: List[StepResult] = []
    batch: List[Step] = []

    def flush_batch() -> None:
        if not batch:
            return
        engine = ShardEngine(jobs=min(jobs, len(batch)))
        tasks = [Task(key=(index,), fn="repro.parallel.procs:run_command",
                      args=(step.argv,),
                      kwargs={"cwd": REPO_ROOT, "env_extra": step.env_extra,
                              "timeout": step.timeout})
                 for index, step in enumerate(batch)]
        for outcome in engine.run(tasks):
            step = batch[outcome.key[0]]
            if outcome.ok:
                record = outcome.value
                results.append(StepResult(step, record["returncode"],
                                          record["seconds"],
                                          record["stdout"],
                                          record["stderr"]))
            else:
                results.append(StepResult(step, 70, outcome.wall_seconds,
                                          "", outcome.error))
            report_step(results[-1])
        batch.clear()

    for step in steps:
        if step.fanout:
            batch.append(step)
            continue
        flush_batch()
        started = time.perf_counter()
        record = run_command(step.argv, cwd=REPO_ROOT,
                             env_extra=step.env_extra, timeout=step.timeout)
        results.append(StepResult(step, record["returncode"],
                                  round(time.perf_counter() - started, 3),
                                  record["stdout"], record["stderr"]))
        report_step(results[-1])
    flush_batch()
    return results


def report_step(result: StepResult) -> None:
    print(f"[{result.status:>4}] {result.step.name:<28} "
          f"rc={result.returncode:<3} {result.seconds:7.2f}s  "
          f"{result.step.display()}")
    for stat in result.cache_stats():
        label = stat.get("cache", "cache")
        hit = "hit" if stat.get("hit") else "miss"
        rest = ", ".join(f"{key}={value}" for key, value in sorted(stat.items())
                         if key not in ("cache", "hit"))
        print(f"    cache {label}: {hit} ({rest})")
    if not result.ok:
        tail = (result.stdout + "\n" + result.stderr).strip()
        if tail:
            for line in tail.splitlines()[-25:]:
                print(f"    | {line}")
    sys.stdout.flush()


def summary_payload(requested: List[str],
                    results: List[StepResult]) -> Dict:
    failures = [r for r in results if not r.ok and not r.step.advisory]
    warnings = [r for r in results if not r.ok and r.step.advisory]
    caches = [stat for r in results for stat in r.cache_stats()]
    return {
        "suites": requested,
        "ok": not failures,
        "wall_seconds": round(sum(r.seconds for r in results), 3),
        "steps": [{
            "name": r.step.name,
            "command": r.step.display(),
            "returncode": r.returncode,
            "seconds": r.seconds,
            "status": r.status,
            "advisory": r.step.advisory,
            "cache": r.cache_stats(),
        } for r in results],
        "failures": [r.step.name for r in failures],
        "warnings": [r.step.name for r in warnings],
        "cache_hits": sum(1 for stat in caches if stat.get("hit")),
        "cache_misses": sum(1 for stat in caches if not stat.get("hit")),
    }


def write_junit(path: str, requested: List[str],
                results: List[StepResult]) -> None:
    failures = [r for r in results if not r.ok and not r.step.advisory]
    total_time = sum(r.seconds for r in results)
    lines = ['<?xml version="1.0" encoding="utf-8"?>',
             f'<testsuite name="ci_run:{"+".join(requested)}" '
             f'tests="{len(results)}" failures="{len(failures)}" '
             f'time="{total_time:.3f}">']
    for result in results:
        name = escape(result.step.name, {'"': "&quot;"})
        lines.append(f'  <testcase name="{name}" classname="ci_run" '
                     f'time="{result.seconds:.3f}">')
        if not result.ok:
            tag = "skipped" if result.step.advisory else "failure"
            tail = escape((result.stdout + "\n" + result.stderr)[-4000:])
            lines.append(f'    <{tag} message="exit code '
                         f'{result.returncode}">{tail}</{tag}>')
        lines.append('  </testcase>')
    lines.append('</testsuite>')
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--suite", action="append", required=True,
                        choices=["lint", "tier1", "docs", "crash", "sweeps",
                                 "tenancy", "fuzz", "policy", "capacity",
                                 "bench", "all"],
                        help="suite to run (repeatable)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for fan-out suites "
                             "(0 = all cores)")
    parser.add_argument("--dry-run", action="store_true",
                        help="list every command the suites would run, "
                             "then exit 0")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable summary on stdout")
    parser.add_argument("--junit", metavar="PATH", default=None,
                        help="write a JUnit XML summary to PATH")
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)

    try:
        steps: List[Step] = []
        for suite in args.suite:
            steps.extend(suite_steps(suite, jobs))
    except KeyError as exc:
        print(f"unknown suite: {exc}", file=sys.stderr)
        return 2

    if args.dry_run:
        for step in steps:
            print(step.display())
        return 0

    try:
        results = run_steps(steps, jobs)
    except Exception as exc:  # orchestrator bug, not a step failure
        print(f"orchestrator error: {exc}", file=sys.stderr)
        return 2

    failures = [r for r in results if not r.ok and not r.step.advisory]
    warnings = [r for r in results if not r.ok and r.step.advisory]
    print(f"\n{len(results)} step(s): {len(results) - len(failures) - len(warnings)} "
          f"passed, {len(failures)} failed, {len(warnings)} advisory-failed")
    if args.junit:
        write_junit(args.junit, args.suite, results)
        print(f"wrote {args.junit}")
    if args.json:
        print(json.dumps(summary_payload(args.suite, results),
                         indent=2, sort_keys=True))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
