#!/usr/bin/env python
"""Crash-point exploration from the command line.

Enumerates every persistence boundary a workload crosses, power-cuts the
simulated machine at each one (plus seeded cache-line survivor subsets),
runs recovery, and checks the durability contract
(see docs/CRASH_TESTING.md)::

    PYTHONPATH=src python tools/crash_explore.py --workload fio
    PYTHONPATH=src python tools/crash_explore.py --workload fio-mixed \
        --budget 40 --subsets 2 --seed 1 --check
    PYTHONPATH=src python tools/crash_explore.py --workload fio --list-points

Exit codes: 0 = explored clean, 1 = invariant violations found
(with ``--check``), 2 = usage or harness error.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.faults import CrashExplorer, ExplorationError  # noqa: E402
from repro.faults.workloads import WORKLOADS  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Enumerate crash points, crash at each, recover, and "
                    "check the durability contract.")
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        default="fio", help="workload factory to drive")
    parser.add_argument("--ops", type=int, default=None,
                        help="number of application ops (workload default "
                             "if omitted)")
    parser.add_argument("--budget", type=int, default=None,
                        help="max crash points to explore (default: all)")
    parser.add_argument("--subsets", type=int, default=1,
                        help="seeded cache-line survivor subsets per dirty "
                             "point, on top of the drop-all image")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for survivor-subset sampling")
    parser.add_argument("--list-points", action="store_true",
                        help="enumerate and print the crash points, "
                             "then exit without exploring")
    parser.add_argument("--minimize", action="store_true",
                        help="greedily shrink each failing case to a "
                             "minimal survivor set")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any invariant violation is found")
    return parser


def make_factory(args: argparse.Namespace):
    maker = WORKLOADS[args.workload]
    if args.ops is None:
        return maker()
    # Every shipped workload's first parameter is its op count.
    return maker(args.ops)


def list_points(explorer: CrashExplorer) -> None:
    points = explorer.enumerate_points()
    for point in points:
        print(f"#{point.index:4d}  t={point.time:12.9f}  "
              f"dirty={point.dirty_lines:3d}  {point.site:28s} {point.label}")
    print(f"{len(points)} crash points")


def report_violations(result, explorer: CrashExplorer,
                      minimize: bool) -> None:
    failing = [case for case in result.cases if case.violations]
    print(f"\n{len(failing)} failing case(s):")
    for case in failing:
        print(f"- point #{case.point.index} [{case.point.site}] "
              f"{case.point.label!r}, variant {case.variant}")
        for violation in case.violations:
            print(f"    {violation.invariant}: {violation.message}")
        if minimize and case.keep_lines:
            smallest = explorer.minimize(case)
            print(f"    minimized survivor set: "
                  f"{list(smallest.keep_lines)} "
                  f"({len(case.keep_lines)} -> {len(smallest.keep_lines)} "
                  f"lines)")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        explorer = CrashExplorer(make_factory(args), budget=args.budget,
                                 drop_subsets=args.subsets, seed=args.seed)
        if args.list_points:
            list_points(explorer)
            return 0
        result = explorer.explore()
    except ExplorationError as exc:
        print(f"harness error: {exc}", file=sys.stderr)
        return 2
    print(f"workload: {args.workload}")
    print(result.summary())
    if result.violations:
        report_violations(result, explorer, args.minimize)
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
