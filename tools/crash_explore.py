#!/usr/bin/env python
"""Crash-point exploration from the command line.

Enumerates every persistence boundary a workload crosses, power-cuts the
simulated machine at each one (plus seeded cache-line survivor subsets),
runs recovery, and checks the durability contract
(see docs/CRASH_TESTING.md)::

    PYTHONPATH=src python tools/crash_explore.py --workload fio
    PYTHONPATH=src python tools/crash_explore.py --workload fio-mixed \
        --budget 40 --subsets 2 --seed 1 --check
    PYTHONPATH=src python tools/crash_explore.py --workload fio --list-points
    PYTHONPATH=src python tools/crash_explore.py --workload fio --jobs 4 \
        --check --json

``--jobs N`` shards the sweep across N worker processes
(``repro.parallel``); the report is byte-identical to a sequential run
regardless of N — results merge in plan order, never arrival order.
``--seeds`` runs a survivor-sampling seed matrix (one full sweep per
seed, also sharded across the jobs).

Exit codes: 0 = explored clean, 1 = invariant violations found
(with ``--check``), 2 = usage or harness error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.faults import CrashExplorer, ExplorationError  # noqa: E402
from repro.faults.workloads import WORKLOADS  # noqa: E402
from repro.obs import MetricsRegistry  # noqa: E402
from repro.parallel import (ShardEngine, SweepSpec, make_explorer,  # noqa: E402
                            parallel_explore, seed_matrix)


def parse_seeds(text: str) -> list:
    """``"0,2,5-7"`` -> ``[0, 2, 5, 6, 7]`` (sorted, deduplicated)."""
    seeds = set()
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part[1:]:
            lo, _, hi = part[1:].partition("-")
            seeds.update(range(int(part[0] + lo), int(hi) + 1))
        else:
            seeds.add(int(part))
    if not seeds:
        raise ValueError(f"no seeds in {text!r}")
    return sorted(seeds)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Enumerate crash points, crash at each, recover, and "
                    "check the durability contract.")
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        default="fio", help="workload factory to drive")
    parser.add_argument("--ops", type=int, default=None,
                        help="number of application ops (workload default "
                             "if omitted)")
    parser.add_argument("--budget", type=int, default=None,
                        help="max crash points to explore (default: all)")
    parser.add_argument("--subsets", type=int, default=1,
                        help="seeded cache-line survivor subsets per dirty "
                             "point, on top of the drop-all image")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for survivor-subset sampling")
    parser.add_argument("--seeds", type=str, default=None,
                        help="seed matrix: comma list / ranges ('0,2,4-7'); "
                             "one full sweep per seed, overrides --seed")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes to shard the sweep across "
                             "(default 1 = sequential; 0 = all cores)")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        help="per-shard deadline in seconds (parallel only)")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable summary on stdout "
                             "instead of the text report")
    parser.add_argument("--metrics", action="store_true",
                        help="dump parallel.* engine metrics to stderr "
                             "after the sweep")
    parser.add_argument("--trace", action="store_true",
                        help="attach a request tracer to every rebuilt run; "
                             "the report is guaranteed byte-identical to an "
                             "untraced sweep")
    parser.add_argument("--warm-start", action="store_true",
                        help="run the phased workload variant and resume "
                             "post-checkpoint cases from a quiescent machine "
                             "snapshot instead of replaying the prefix "
                             "(docs/CRASH_TESTING.md); results are "
                             "byte-identical warm vs. cold and sequential "
                             "vs. sharded within the phased mode")
    parser.add_argument("--list-points", action="store_true",
                        help="enumerate and print the crash points, "
                             "then exit without exploring")
    parser.add_argument("--minimize", action="store_true",
                        help="greedily shrink each failing case to a "
                             "minimal survivor set")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any invariant violation is found")
    return parser


def list_points(explorer: CrashExplorer) -> None:
    points = explorer.enumerate_points()
    for point in points:
        print(f"#{point.index:4d}  t={point.time:12.9f}  "
              f"dirty={point.dirty_lines:3d}  {point.site:28s} {point.label}")
    print(f"{len(points)} crash points")


def report_violations(result, explorer: CrashExplorer,
                      minimize: bool) -> None:
    failing = [case for case in result.cases if case.violations]
    print(f"\n{len(failing)} failing case(s):")
    for case in failing:
        print(f"- point #{case.point.index} [{case.point.site}] "
              f"{case.point.label!r}, variant {case.variant}")
        for violation in case.violations:
            print(f"    {violation.invariant}: {violation.message}")
        if minimize and case.keep_lines:
            smallest = explorer.minimize(case)
            print(f"    minimized survivor set: "
                  f"{list(smallest.keep_lines)} "
                  f"({len(case.keep_lines)} -> {len(smallest.keep_lines)} "
                  f"lines)")


def json_summary(workload: str, result) -> dict:
    """Deterministic machine-readable sweep summary: no wall-clock, no
    worker info — byte-identical for any ``--jobs``."""
    by_invariant = {}
    for violation in result.violations:
        by_invariant[violation.invariant] = \
            by_invariant.get(violation.invariant, 0) + 1
    failing = [{
        "point": case.point.index,
        "site": case.point.site,
        "label": case.point.label,
        "variant": case.variant,
        "keep_lines": list(case.keep_lines),
        "violations": [{"invariant": v.invariant, "message": v.message}
                       for v in case.violations],
    } for case in result.cases if case.violations]
    return {
        "workload": workload,
        "ok": result.ok,
        "points": len(result.points),
        "explored": len(result.selected),
        "cases": len(result.cases),
        "violations": len(result.violations),
        "by_site": result.site_histogram(),
        "by_invariant": by_invariant,
        "failing_cases": failing,
    }


def print_json(payload: dict) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def dump_metrics(registry: MetricsRegistry) -> None:
    for metric in registry.collect("parallel"):
        print(f"{metric.name} = {metric.value():g}", file=sys.stderr)


def run_matrix(args, spec: SweepSpec, engine: ShardEngine) -> int:
    seeds = parse_seeds(args.seeds)
    cells = seed_matrix(spec, seeds, engine=engine)
    total = sum(cell["violations"] for cell in cells)
    if args.json:
        print_json({"workload": args.workload, "seeds": seeds,
                    "cells": cells, "violations": total,
                    "ok": total == 0})
    else:
        print(f"workload: {args.workload}")
        print(f"seed matrix: {len(cells)} cell(s)")
        for cell in cells:
            print(f"  seed {cell['seed']:4d}: cases {cell['cases']:5d}  "
                  f"violations {cell['violations']}")
        print(f"total violations: {total}")
    return 1 if total and args.check else 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    registry = MetricsRegistry()
    try:
        spec = SweepSpec(workload=args.workload, ops=args.ops,
                         budget=args.budget, subsets=args.subsets,
                         seed=args.seed, trace=args.trace,
                         warm_start=args.warm_start)
        jobs = args.jobs if args.jobs > 0 else None
        engine = ShardEngine(jobs=jobs, registry=registry)
        explorer = make_explorer(spec)
        if args.list_points:
            list_points(explorer)
            return 0
        if args.seeds is not None:
            code = run_matrix(args, spec, engine)
            if args.metrics:
                dump_metrics(registry)
            return code
        result = parallel_explore(spec, engine=engine, explorer=explorer,
                                  shard_timeout=args.shard_timeout)
    except ValueError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return 2
    except ExplorationError as exc:
        print(f"harness error: {exc}", file=sys.stderr)
        return 2
    if args.metrics:
        dump_metrics(registry)
    if args.json:
        print_json(json_summary(args.workload, result))
    else:
        print(f"workload: {args.workload}")
        if args.trace:
            print("tracing: enabled")
        print(result.summary())
        if result.violations:
            report_violations(result, explorer, args.minimize)
    if result.violations and args.check:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
