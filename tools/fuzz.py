#!/usr/bin/env python
"""Coverage-guided crash-and-fault fuzzing from the command line.

Runs a campaign over the joint search space (workload schedule x crash
point x surviving-line subset x injected block faults), keeps the
deduplicated minimized corpus on disk, and triages findings
(see docs/FUZZING.md)::

    PYTHONPATH=src python tools/fuzz.py run --seed 0 --cases 64 \
        --corpus /tmp/corpus --html --check
    PYTHONPATH=src python tools/fuzz.py run --seed 0 --cases 64 --jobs 4
    PYTHONPATH=src python tools/fuzz.py triage /tmp/corpus
    PYTHONPATH=src python tools/fuzz.py triage /tmp/corpus --case a1b2c3d4e5f6
    PYTHONPATH=src python tools/fuzz.py compare /tmp/corpus-a /tmp/corpus-b

``--jobs N`` shards case evaluation across N worker processes
(``repro.parallel``); the corpus, findings, and reports are
byte-identical to a sequential run at any N — candidate batches are
drawn before execution and ingested in batch order, never arrival
order.

Exit codes (matching tools/crash_explore.py): 0 = clean, 1 = findings
(with ``--check``), 2 = usage or harness error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.fuzz import (Corpus, FuzzCase, FuzzConfig,  # noqa: E402
                        FuzzEngine, compare_campaigns, render_compare_text,
                        render_html, render_text, run_case_task)
from repro.fuzz.report import corpus_case_rows  # noqa: E402
from repro.obs import MetricsRegistry  # noqa: E402
from repro.parallel import FuzzShardError, ShardEngine  # noqa: E402
from repro.workloads import FUZZ_SEED_MIXES  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Coverage-guided fuzzing of crash recovery: mutate "
                    "workload schedules, crash points, survivor subsets "
                    "and fault plans; check the durability contract.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a fuzz campaign")
    run.add_argument("--seed", type=int, default=0,
                     help="campaign seed (drives generation, mutation, "
                          "and survivor sampling)")
    run.add_argument("--cases", type=int, default=64,
                     help="total cases to execute (seeds + candidates)")
    run.add_argument("--batch", type=int, default=8,
                     help="candidate batch size; part of the determinism "
                          "contract — never derived from --jobs")
    run.add_argument("--jobs", type=int, default=1,
                     help="worker processes to shard batches across "
                          "(default 1 = in-process; 0 = all cores)")
    run.add_argument("--families", type=str, default=None,
                     help="comma list of seed families (default: all of "
                          f"{','.join(sorted(FUZZ_SEED_MIXES))})")
    run.add_argument("--max-ops", type=int, default=12,
                     help="schedule length cap for generated cases")
    run.add_argument("--no-feedback", action="store_true",
                     help="blind baseline: mutate only the seed cases, "
                          "never coverage-novel corpus entries")
    run.add_argument("--no-minimize", action="store_true",
                     help="keep findings as found, skip greedy shrinking")
    run.add_argument("--time-budget", type=float, default=None,
                     help="wall-clock cap in seconds (checked between "
                          "batches; breaks cross-run byte-identity)")
    run.add_argument("--corpus", type=str, default=None,
                     help="directory to write the corpus into "
                          "(cases/, findings/, campaign.json)")
    run.add_argument("--reuse-corpus", action="store_true",
                     help="seed the campaign from the cases already in "
                          "--corpus (cross-campaign corpus reuse: CI "
                          "caches the directory keyed by the source "
                          "tree's stack digest, docs/FUZZING.md); a "
                          "missing or empty directory is a cache miss, "
                          "not an error")
    run.add_argument("--html", action="store_true",
                     help="also write report.html into the corpus dir "
                          "(requires --corpus)")
    run.add_argument("--json", action="store_true",
                     help="emit the campaign summary as JSON on stdout")
    run.add_argument("--metrics", action="store_true",
                     help="dump fuzz.* metrics to stderr after the run")
    run.add_argument("--check", action="store_true",
                     help="exit 1 if any invariant violation is found")

    triage = sub.add_parser("triage", help="inspect a written corpus")
    triage.add_argument("corpus", help="corpus directory from a run")
    triage.add_argument("--case", type=str, default=None,
                        help="replay one case/finding by digest and "
                             "report the outcome")
    triage.add_argument("--html", action="store_true",
                        help="(re)write report.html from the corpus")
    triage.add_argument("--json", action="store_true",
                        help="emit JSON instead of the text report")
    triage.add_argument("--check", action="store_true",
                        help="exit 1 if the corpus (or the replayed "
                             "case) has findings")

    compare = sub.add_parser(
        "compare", help="diff two campaigns' coverage and findings")
    compare.add_argument("corpus_a", help="first corpus directory")
    compare.add_argument("corpus_b", help="second corpus directory")
    compare.add_argument("--json", action="store_true",
                         help="emit the diff as JSON")
    return parser


def print_json(payload) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def dump_metrics(registry: MetricsRegistry) -> None:
    for metric in registry.collect("fuzz"):
        print(f"{metric.name} = {metric.value():g}", file=sys.stderr)


def write_corpus(root: str, result, want_html: bool) -> None:
    corpus = Corpus(root)
    for case, origin, new_edges in result.corpus:
        corpus.write_case(case, origin, new_edges)
    for finding in result.finding_list():
        corpus.write_finding(finding)
    summary = result.summary()
    corpus.write_campaign(summary)
    if want_html:
        cases = [{"digest": case.digest(), "case": case.to_fields(),
                  "origin": origin, "new_edges": new_edges}
                 for case, origin, new_edges in result.corpus]
        corpus.write_report(
            render_html(summary, result.finding_list(), cases))


def reuse_corpus_seeds(fuzzer: FuzzEngine, root: str) -> None:
    """Extend the campaign's seed pool with the cases of a previous
    corpus (deduplicated by digest, ingested in sorted-digest order so
    the extended campaign stays deterministic). Emits a ``::cache::``
    marker line that ``tools/ci_run.py --json`` surfaces as cache-hit
    stats in job logs."""
    prior = Corpus(root).load_cases()
    seen = {case.digest() for case in fuzzer.seeds}
    reused = 0
    for record in prior:
        case = FuzzCase.from_fields(record["case"])
        if case.digest() in seen:
            continue
        seen.add(case.digest())
        fuzzer.seeds.append(case)
        reused += 1
    print("::cache:: " + json.dumps(
        {"cache": "fuzz-corpus", "hit": bool(prior),
         "available_cases": len(prior), "reused_cases": reused},
        sort_keys=True))


def cmd_run(args) -> int:
    if args.html and args.corpus is None:
        raise ValueError("--html requires --corpus")
    if args.reuse_corpus and args.corpus is None:
        raise ValueError("--reuse-corpus requires --corpus")
    families = (tuple(sorted(set(args.families.split(","))))
                if args.families else tuple(sorted(FUZZ_SEED_MIXES)))
    unknown = set(families) - set(FUZZ_SEED_MIXES)
    if unknown:
        raise ValueError(f"unknown families: {sorted(unknown)}")
    config = FuzzConfig(
        seed=args.seed, max_cases=args.cases, batch=args.batch,
        feedback=not args.no_feedback, families=families,
        max_ops=args.max_ops, minimize=not args.no_minimize,
        time_budget=args.time_budget)
    engine = None
    registry = MetricsRegistry()
    if args.jobs != 1:
        engine = ShardEngine(jobs=args.jobs if args.jobs > 0 else None,
                             registry=registry)
    fuzzer = FuzzEngine(config, engine=engine, registry=registry)
    if args.reuse_corpus:
        reuse_corpus_seeds(fuzzer, args.corpus)
    result = fuzzer.run()
    if args.corpus:
        write_corpus(args.corpus, result, args.html)
    if args.metrics:
        dump_metrics(registry)
    if args.json:
        print_json(result.summary())
    else:
        print(render_text(result.summary(), result.finding_list()))
    return 1 if result.findings and args.check else 0


def replay_case(corpus: Corpus, digest: str, as_json: bool) -> int:
    """Re-execute one corpus case or finding in-process and report."""
    finding = corpus.load_finding(digest)
    case = (FuzzCase.from_fields(finding["case"]) if finding
            else corpus.load_case(digest))
    if case is None:
        raise ValueError(f"no case or finding {digest!r} in {corpus.root}")
    outcome = run_case_task(case.to_fields())
    if outcome["error"] is not None:
        print(f"harness error: {outcome['error']}", file=sys.stderr)
        return 2
    if as_json:
        print_json({"digest": digest, "case": case.to_fields(),
                    "violations": outcome["violations"],
                    "points": outcome["points"],
                    "edges": len(outcome["edges"])})
    else:
        print(f"case {digest}: {len(case.schedule)} ops, "
              f"{outcome['points']} crash points, "
              f"{len(outcome['edges'])} edges")
        if finding:
            print(f"expected: [{finding['invariant']}] at "
                  f"{finding['site']} ({finding['variant']})")
        if outcome["violations"]:
            for violation in outcome["violations"]:
                print(f"  [{violation['invariant']}] at "
                      f"{violation['site']} point #{violation['point']} "
                      f"({violation['variant']})")
                print(f"      {violation['message']}")
        else:
            print("  no invariant violations — case recovered clean")
    return 1 if outcome["violations"] else 0


def cmd_triage(args) -> int:
    corpus = Corpus(args.corpus)
    if args.case is not None:
        code = replay_case(corpus, args.case, args.json)
        return code if args.check or code == 2 else 0
    try:
        summary = corpus.load_campaign()
    except FileNotFoundError:
        raise ValueError(f"no campaign.json in {args.corpus} — "
                         "run with --corpus first")
    findings = sorted(corpus.load_findings(), key=lambda f: f["digest"])
    if args.html:
        cases = corpus_case_rows(corpus.load_cases(), summary["corpus"])
        path = corpus.write_report(render_html(summary, findings, cases))
        print(f"wrote {path}", file=sys.stderr)
    if args.json:
        print_json({"summary": summary, "findings": findings})
    else:
        print(render_text(summary, findings))
    return 1 if findings and args.check else 0


def cmd_compare(args) -> int:
    diff = compare_campaigns(Corpus(args.corpus_a).load_campaign(),
                             Corpus(args.corpus_b).load_campaign())
    if args.json:
        print_json(diff)
    else:
        print(render_compare_text(diff))
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return cmd_run(args)
        if args.command == "triage":
            return cmd_triage(args)
        return cmd_compare(args)
    except ValueError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return 2
    except FuzzShardError as exc:
        print(f"harness error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
