#!/usr/bin/env python
"""Plain-text metrics dashboard for an instrumented stack.

Builds one of the evaluated stacks with observability on
(``build_stack(..., metrics=True)``), runs a short fio-like workload
against it, and prints:

- per-layer metric tables (nvmm / block / kernel / fs / core),
- the headline NVCache numbers the paper's figures revolve around —
  read-cache hit ratio, log occupancy, p99 write latency,
- sparkline time-series of log occupancy and cleanup drain rate,
  sampled on the simulated clock.

The full metric reference is docs/OBSERVABILITY.md.

Usage::

    PYTHONPATH=src python tools/metrics_report.py
    PYTHONPATH=src python tools/metrics_report.py --system dm-writecache+ssd
    PYTHONPATH=src python tools/metrics_report.py --rw randrw --size-mib 8
    PYTHONPATH=src python tools/metrics_report.py --export prom   # Prometheus text
    PYTHONPATH=src python tools/metrics_report.py --export json   # JSON snapshot
"""

from __future__ import annotations

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.harness.reporting import (  # noqa: E402
    format_metrics_by_layer, mib_per_s, sparkline)
from repro.harness.systems import SYSTEM_NAMES, Scale, build_stack  # noqa: E402
from repro.obs import Sampler, to_json_text, to_prometheus_text  # noqa: E402
from repro.units import KIB, MIB, fmt_time  # noqa: E402
from repro.workloads.fio import FioJob, run_fio  # noqa: E402


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="run a workload on an instrumented stack, print metrics")
    parser.add_argument("--system", default="nvcache+ssd", choices=SYSTEM_NAMES)
    parser.add_argument("--rw", default="randwrite",
                        choices=["write", "randwrite", "read", "randread",
                                 "randrw"])
    parser.add_argument("--size-mib", type=float, default=4.0,
                        help="bytes transferred by the job (MiB)")
    parser.add_argument("--fsync", type=int, default=1,
                        help="fsync every N writes (0 = never)")
    parser.add_argument("--scale", type=int, default=4096,
                        help="Scale.factor dividing the paper's sizes")
    parser.add_argument("--samples", type=int, default=60,
                        help="target number of time-series samples")
    parser.add_argument("--export", choices=["prom", "json"],
                        help="dump the final registry in this format "
                             "instead of the tables")
    parser.add_argument("--trace", action="store_true",
                        help="also attach the request tracer; headline "
                             "latencies gain p99 exemplar trace-ids "
                             "(inspect them with tools/trace_report.py)")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    stack = build_stack(args.system, Scale(args.scale), metrics=True,
                        tracing=args.trace)
    registry = stack.metrics

    job = FioJob(rw=args.rw, block_size=4 * KIB,
                 size=int(args.size_mib * MIB), fsync=args.fsync)
    # Aim for ~args.samples points: estimate per-op time from a tiny
    # probe run is overkill — sample finely and let sparkline downsample.
    sampler = Sampler(stack.env, registry, period=5e-5).start()
    result = run_fio(stack.env, stack.libc, job, "/bench.dat",
                     settle=stack.settle)
    sampler.stop()

    if args.export == "prom":
        sys.stdout.write(to_prometheus_text(registry))
        return 0
    if args.export == "json":
        print(to_json_text(registry))
        return 0

    print(f"system: {args.system}  job: {job.rw} {job.block_size}B "
          f"x {result.write_count + result.read_count} ops "
          f"fsync={job.fsync}")
    print(f"elapsed (simulated): {fmt_time(result.elapsed)}  "
          f"write bw: {mib_per_s(result.write_bandwidth)}")
    print()

    def p99_with_exemplar(label, hist):
        """One headline row, plus an exemplar row when tracing recorded a
        trace-id near the p99 bucket (docs/OBSERVABILITY.md, Tracing)."""
        rows = [(label, fmt_time(hist.quantile(0.99)))]
        exemplar = hist.exemplar_near(0.99)
        if exemplar is not None:
            trace_id, value = exemplar
            rows.append((f"{label} exemplar",
                         f"trace {trace_id} ({fmt_time(value)})"))
        return rows

    # Headline numbers (paper Figs 4-6): hit ratio, occupancy, p99.
    headlines = []
    if registry.get("core.nvcache.hit_ratio") is not None:
        headlines.append(("read-cache hit ratio",
                          f"{registry.get('core.nvcache.hit_ratio').value():.3f}"))
        occupancy = registry.get("core.log.occupancy").value()
        headlines.append(("log occupancy (final)", f"{occupancy:.3f}"))
        headlines.extend(p99_with_exemplar(
            "p99 write latency", registry.get("core.nvcache.write_latency")))
    else:
        for name in registry.names():
            if name.endswith(".write_latency"):
                headlines.extend(p99_with_exemplar(
                    f"p99 {name}", registry.get(name)))
    if headlines:
        width = max(len(label) for label, _ in headlines)
        print("headline:")
        for label, value in headlines:
            print(f"  {label.ljust(width)}  {value}")
        print()

    # Time series over the run (simulated clock).
    series_of_interest = [
        ("log occupancy", "core.log.occupancy", False),
        ("drain rate (entries/s)", "core.cleanup.entries_retired", True),
        ("dirty pages", "kernel.page_cache.dirty_pages", False),
    ]
    shown = []
    for label, name, as_rate in series_of_interest:
        if registry.get(name) is None:
            continue
        if as_rate:
            _times, values = sampler.rate_series(name)
        else:
            _times, values = sampler.series(name)
        if values:
            shown.append((label, sparkline(values, width=48),
                          f"max={max(values):.3g}"))
    if shown:
        width = max(len(label) for label, _, _ in shown)
        print("over time:")
        for label, spark, peak in shown:
            print(f"  {label.ljust(width)}  {spark}  {peak}")
        print()

    print(format_metrics_by_layer(registry))
    return 0


if __name__ == "__main__":
    sys.exit(main())
