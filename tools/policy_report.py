#!/usr/bin/env python
"""Policy lab report: the Logging-vs-Paging crossover and eviction policies.

Drives every crossover mix (``repro.harness.CROSSOVER_MIXES``) through
both cache modes of the same NVCache facade — ``logging`` (the paper's
log + DRAM read cache) and ``paging`` (the NVMM page-table cache,
docs/POLICIES.md) — and prints the winner per mix, then compares the
pluggable eviction/promotion policies (lru / alru / nhit) on a
slot-squeezed paging run where they actually have victims to choose.

Usage::

    PYTHONPATH=src python tools/policy_report.py
    PYTHONPATH=src python tools/policy_report.py --mix read-heavy
    PYTHONPATH=src python tools/policy_report.py --json
    PYTHONPATH=src python tools/policy_report.py --check     # CI gate

``--check`` exits 1 unless every mix's measured winner matches its
expected winner (logging for small-sync-write, paging for
overwrite-heavy and read-heavy) and the policy comparison is sane:
every policy sees the same workload (identical page_hits+page_misses),
lru/alru admit everything (promotions_skipped == 0) while nhit's
admission gate actually skips cold pages. Everything is seeded and
single-threaded, so two runs with the same arguments are
byte-identical.

Exit codes: 0 success, 1 a check failed, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core import POLICY_NAMES  # noqa: E402
from repro.harness import (CROSSOVER_MIXES, policy_crossover,  # noqa: E402
                           policy_hit_ratios)

#: Stat columns shown per cache mode in the crossover table.
_MODE_STATS = {
    "logging": ("writes", "log_full_waits", "read_hits", "read_misses"),
    "paging": ("writes", "overwrite_hits", "fill_reads", "writeback_pages"),
}


def run_report(args) -> dict:
    """Run both experiments and return the JSON-ready report dict."""
    mixes = args.mix or sorted(CROSSOVER_MIXES)
    crossover = policy_crossover(mixes=mixes, seed=args.seed)
    policies = policy_hit_ratios(mix=args.policy_mix,
                                 policies=list(POLICY_NAMES),
                                 seed=args.seed,
                                 paging_slots=args.policy_slots)
    report = {
        "seed": args.seed,
        "mixes": {},
        "policies": policies,
        "policy_mix": args.policy_mix,
        "policy_slots": args.policy_slots,
    }
    for mix, result in crossover.items():
        report["mixes"][mix] = {
            "expected_winner": result.expected_winner,
            "winner": result.winner,
            "as_expected": result.as_expected,
            "speedup": result.speedup,
            "elapsed": result.elapsed,
            "bandwidth": result.bandwidth,
            "cache_stats": result.cache_stats,
        }
    return report


def check_report(report: dict) -> list:
    """Return the list of human-readable check failures (empty = pass)."""
    failures = []
    for mix, row in sorted(report["mixes"].items()):
        if not row["as_expected"]:
            failures.append(
                f"mix {mix!r}: winner {row['winner']} != expected "
                f"{row['expected_winner']} (elapsed {row['elapsed']})")
        if row["speedup"] <= 1.0:
            failures.append(
                f"mix {mix!r}: degenerate speedup {row['speedup']:.3f} "
                "— the modes are indistinguishable at this geometry")
    policies = report["policies"]
    accesses = {name: row["page_hits"] + row["page_misses"]
                for name, row in policies.items()}
    if len(set(accesses.values())) != 1:
        failures.append(f"policies saw different workloads: {accesses}")
    for name in ("lru", "alru"):
        if name in policies and policies[name]["promotions_skipped"]:
            failures.append(
                f"policy {name!r}: admission gate fired "
                f"({policies[name]['promotions_skipped']} skips) but "
                "lru/alru must admit every miss")
    if "nhit" in policies and not policies["nhit"]["promotions_skipped"]:
        failures.append("policy 'nhit': admission gate never fired — "
                        "threshold admission is not being exercised")
    return failures


def print_report(report: dict) -> None:
    print(f"Logging-vs-Paging crossover (seed {report['seed']})")
    header = (f"  {'mix':<18} {'expected':<9} {'winner':<9} "
              f"{'ok':<5} {'speedup':>7}  elapsed (log / page)")
    print(header)
    for mix, row in sorted(report["mixes"].items()):
        elapsed = row["elapsed"]
        print(f"  {mix:<18} {row['expected_winner']:<9} {row['winner']:<9} "
              f"{str(row['as_expected']):<5} {row['speedup']:>6.2f}x  "
              f"{elapsed.get('logging', 0.0):.4f}s / "
              f"{elapsed.get('paging', 0.0):.4f}s")
        for mode in sorted(row["cache_stats"]):
            stats = row["cache_stats"][mode]
            shown = ", ".join(f"{key}={int(stats[key])}"
                              for key in _MODE_STATS.get(mode, ())
                              if key in stats)
            print(f"      {mode:<8} {shown}")
    print(f"\nEviction policies on {report['policy_mix']} "
          f"(paging_slots={report['policy_slots']})")
    print(f"  {'policy':<7} {'hit_rate':>8} {'hits':>6} {'misses':>7} "
          f"{'promoted':>8} {'skipped':>8} {'evicted':>8}")
    for name, row in sorted(report["policies"].items()):
        print(f"  {name:<7} {row['hit_rate']:>8.3f} "
              f"{int(row['page_hits']):>6} {int(row['page_misses']):>7} "
              f"{int(row['promotions']):>8} "
              f"{int(row['promotions_skipped']):>8} "
              f"{int(row['evictions']):>8}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--mix", action="append",
                        choices=sorted(CROSSOVER_MIXES),
                        help="restrict the crossover to this mix "
                             "(repeatable; default: all mixes)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--policy-mix", default="read-heavy",
                        choices=sorted(CROSSOVER_MIXES),
                        help="mix used for the policy comparison "
                             "(default read-heavy)")
    parser.add_argument("--policy-slots", type=int, default=128,
                        help="paging slots for the policy comparison — "
                             "kept below the working set so policies "
                             "have victims (default 128)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full report as JSON")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless winners and policy sanity "
                             "checks all hold (CI gate)")
    args = parser.parse_args(argv)

    report = run_report(args)
    failures = check_report(report)
    if args.json:
        report["check_failures"] = failures
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print_report(report)
    if args.check:
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        if not failures:
            print("policy crossover check: all "
                  f"{len(report['mixes'])} mixes as expected, "
                  "policy sanity holds")
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
