#!/usr/bin/env python
"""Multi-tenant fairness report for the traffic engine.

Runs a seeded mixed-tenant population (fio / db_bench / ycsb / kvstore
/ sqldb clients) over bounded simulated workers against one shared
NVCache (``repro.tenancy``, docs/MULTITENANCY.md) and prints the
fairness report: per-class p99, per-tenant slowdowns/hit ratios/quota
occupancy, Jain's fairness index, and the starvation gauge.

Usage::

    PYTHONPATH=src python tools/tenant_report.py
    PYTHONPATH=src python tools/tenant_report.py --tenants 256 --schedule diurnal
    PYTHONPATH=src python tools/tenant_report.py --quota 8 --json
    PYTHONPATH=src python tools/tenant_report.py --check            # CI gate
    PYTHONPATH=src python tools/tenant_report.py --verify-sharding --seeds 4 --jobs 4

``--check`` exits 1 unless every request completed, the Jain index is
at least ``--min-jain`` and the starvation gauge is at most
``--max-starvation``. ``--verify-sharding`` runs the same seed sweep
sequentially and sharded over ``--jobs`` worker processes
(``repro.parallel``) and exits 1 unless the merged results are
byte-identical.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.harness.systems import SYSTEM_NAMES  # noqa: E402
from repro.tenancy import (TrafficEngine, make_mix, make_schedule,  # noqa: E402
                           sweep_seeds)


def verify_sharding(args) -> int:
    seeds = list(range(args.seed, args.seed + args.seeds))
    params = {"tenants": args.tenants, "operations": args.ops,
              "workers": args.workers, "schedule": args.schedule,
              "duration": args.duration, "quota_entries": args.quota,
              "qos": not args.no_qos, "stack": args.system}
    sequential = sweep_seeds(seeds, jobs=1, params=params)
    sharded = sweep_seeds(seeds, jobs=args.jobs, params=params)
    identical = (json.dumps(sequential, sort_keys=True)
                 == json.dumps(sharded, sort_keys=True))
    print(f"{len(seeds)} seed(s), sequential vs --jobs {args.jobs}: "
          + ("byte-identical" if identical else "MISMATCH"))
    for record in sequential:
        if "error" in record:
            print(f"  seed {record['seed']}: ERROR {record['error']}")
            return 1
        print(f"  seed {record['seed']}: digest {record['digest'][:16]} "
              f"jain {record['jain']:.4f} "
              f"starvation {record['starvation']:.4f}")
    return 0 if identical else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--tenants", type=int, default=64,
                        help="logical clients in the mix (default 64)")
    parser.add_argument("--ops", type=int, default=8,
                        help="operations per tenant (default 8)")
    parser.add_argument("--workers", type=int, default=16,
                        help="bounded simulated worker threads (default 16)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--schedule", default="bursty",
                        choices=["steady", "bursty", "diurnal"])
    parser.add_argument("--duration", type=float, default=0.5,
                        help="arrival window in simulated seconds")
    parser.add_argument("--quota", type=int, default=None,
                        help="per-tenant log-space quota in entries "
                             "(default: unlimited)")
    parser.add_argument("--system", default="nvcache+ssd",
                        choices=sorted(SYSTEM_NAMES))
    parser.add_argument("--no-qos", action="store_true",
                        help="run without a QoS manager attached "
                             "(plain shared stack)")
    parser.add_argument("--top", type=int, default=10,
                        help="slowest tenants to list (default 10)")
    parser.add_argument("--json", action="store_true",
                        help="print the full fairness report as JSON")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on fairness-gate failure (CI)")
    parser.add_argument("--min-jain", type=float, default=0.8)
    parser.add_argument("--max-starvation", type=float, default=0.75)
    parser.add_argument("--verify-sharding", action="store_true",
                        help="compare a sequential seed sweep against a "
                             "--jobs-wide sharded one, byte for byte")
    parser.add_argument("--seeds", type=int, default=4,
                        help="seed count for --verify-sharding")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for --verify-sharding")
    args = parser.parse_args(argv)

    if args.verify_sharding:
        return verify_sharding(args)

    specs = make_mix(args.tenants, seed=args.seed, operations=args.ops,
                     quota_entries=args.quota)
    engine = TrafficEngine(
        specs, workers=args.workers, seed=args.seed,
        schedule=make_schedule(args.schedule, duration=args.duration),
        stack_name=args.system, qos=not args.no_qos)
    report = engine.run()

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format(top=args.top))

    if args.check:
        failures = []
        if report.engine["completed"] != report.engine["requests"]:
            failures.append(
                f"only {report.engine['completed']} of "
                f"{report.engine['requests']} requests completed")
        if report.jain < args.min_jain:
            failures.append(f"Jain index {report.jain:.4f} "
                            f"< --min-jain {args.min_jain}")
        if report.starvation > args.max_starvation:
            failures.append(f"starvation {report.starvation:.4f} "
                            f"> --max-starvation {args.max_starvation}")
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        # Keep stdout machine-parseable under --json.
        print(f"check passed: jain {report.jain:.4f} "
              f"starvation {report.starvation:.4f}",
              file=sys.stderr if args.json else sys.stdout)
    return 0


if __name__ == "__main__":
    sys.exit(main())
