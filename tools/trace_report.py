#!/usr/bin/env python
"""Inspect request traces recorded on a simulated stack.

Builds one of the evaluated stacks with tracing on
(``build_stack(..., tracing=True, metrics=True)``), runs a short
fio-like workload against it, and lets you dump, filter, and summarize
the recorded causal span trees (docs/OBSERVABILITY.md, Tracing):

- the default summary: span counts, the slowest root spans, the
  critical-path attribution table, and the p99 exemplar trace,
- ``--list`` every root span, ``--slowest N`` the N slowest roots,
- ``--trace ID`` one trace as an indented tree with per-segment costs,
- ``--attribution`` the per-(layer, segment) critical-path table alone;
  with ``--json`` it emits the shared ``repro.attribution/1`` payload
  (integer-picosecond segments, docs/CAPACITY.md) that the capacity
  explorer's diff engine consumes,
- ``--export trace.json`` the whole recording as Perfetto/Chrome JSON
  (load it at https://ui.perfetto.dev), ``--json`` a machine summary.

Exit codes: 0 success, 2 usage or runtime error (1 is reserved for
check-style gates, which this tool does not run).

Usage::

    PYTHONPATH=src python tools/trace_report.py
    PYTHONPATH=src python tools/trace_report.py --system ssd --rw write
    PYTHONPATH=src python tools/trace_report.py --slowest 5
    PYTHONPATH=src python tools/trace_report.py --trace 17
    PYTHONPATH=src python tools/trace_report.py --export /tmp/trace.json
    PYTHONPATH=src python tools/trace_report.py --sample-rate 0.1 --seed 7
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.capacity import attribution_payload, to_ps  # noqa: E402
from repro.harness.systems import SYSTEM_NAMES, Scale, build_stack  # noqa: E402
from repro.units import KIB, MIB, fmt_time  # noqa: E402
from repro.workloads.fio import FioJob, run_fio  # noqa: E402


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="run a workload on a traced stack, inspect the spans")
    parser.add_argument("--system", default="nvcache+ssd", choices=SYSTEM_NAMES)
    parser.add_argument("--rw", default="randwrite",
                        choices=["write", "randwrite", "read", "randread",
                                 "randrw"])
    parser.add_argument("--size-mib", type=float, default=1.0,
                        help="bytes transferred by the job (MiB)")
    parser.add_argument("--fsync", type=int, default=1,
                        help="fsync every N writes (0 = never)")
    parser.add_argument("--scale", type=int, default=4096,
                        help="Scale.factor dividing the paper's sizes")
    parser.add_argument("--sample-rate", type=float, default=1.0,
                        help="head-sampling probability for root spans")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the sampling decision stream")
    parser.add_argument("--list", action="store_true", dest="list_roots",
                        help="print every recorded root span, then exit")
    parser.add_argument("--trace", type=int, default=None, metavar="ID",
                        help="print one trace as an indented span tree")
    parser.add_argument("--slowest", type=int, default=None, metavar="N",
                        help="print the N slowest root spans")
    parser.add_argument("--attribution", action="store_true",
                        help="print only the critical-path attribution table")
    parser.add_argument("--export", metavar="PATH",
                        help="write the recording as Perfetto/Chrome JSON")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable summary on stdout")
    return parser.parse_args(argv)


def root_line(span) -> str:
    return (f"trace {span.trace_id:5d}  {span.qualified:16s} "
            f"t={span.start:12.9f}  dur={fmt_time(span.duration):>10s}  "
            f"[{span.track}]")


def print_tree(spans) -> None:
    """One trace as an indented tree; spans are already start-ordered."""
    children = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    def walk(span, depth):
        indent = "  " * depth
        print(f"{indent}{span.qualified}  dur={fmt_time(span.duration)}  "
              f"span={span.span_id}  [{span.track}]")
        for key, value in sorted(span.args.items()):
            print(f"{indent}    {key}={value}")
        for segment, cost in sorted(span.segments.items()):
            print(f"{indent}    ~ {segment}: {fmt_time(cost)}")
        if span.links:
            origins = ", ".join(f"trace {t}/span {s}"
                                for t, s, _time, _track in span.links)
            print(f"{indent}    <- linked from {origins}")
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)


def attribution_table(tracer, root_name=None) -> str:
    totals = tracer.attribution(root_name)
    if not totals:
        return "(no segments attributed)"
    grand = sum(totals.values())
    width = max(len(name) for name in totals)
    lines = ["critical-path attribution"
             + (f" ({root_name} roots)" if root_name else "") + ":"]
    for name, cost in sorted(totals.items(), key=lambda kv: -kv[1]):
        share = 100.0 * cost / grand if grand else 0.0
        lines.append(f"  {name.ljust(width)}  {fmt_time(cost):>10s}  "
                     f"{share:5.1f}%")
    lines.append(f"  {'total'.ljust(width)}  {fmt_time(grand):>10s}")
    return "\n".join(lines)


def exemplar_lines(stack) -> list:
    """Resolve p99 exemplars recorded by the latency histograms into
    trace-ids that exist in this recording."""
    lines = []
    if stack.metrics is None:
        return lines
    known = {span.trace_id for span in stack.tracer.spans}
    for name in stack.metrics.names():
        if not name.endswith("_latency"):
            continue
        hist = stack.metrics.get(name)
        exemplar = getattr(hist, "exemplar_near", lambda q: None)(0.99)
        if exemplar is None:
            continue
        trace_id, value = exemplar
        marker = "" if trace_id in known else "  (trace not recorded)"
        lines.append(f"  {name}: p99 exemplar -> trace {trace_id} "
                     f"({fmt_time(value)}){marker}")
    return lines


def json_summary(args, tracer, result) -> dict:
    roots = tracer.roots()
    by_name = {}
    for span in tracer.spans:
        by_name[span.qualified] = by_name.get(span.qualified, 0) + 1
    slowest = sorted(roots, key=lambda s: (-s.duration, s.trace_id))[:10]
    return {
        "system": args.system,
        "rw": args.rw,
        "sample_rate": args.sample_rate,
        "spans": len(tracer.spans),
        "traces": len({span.trace_id for span in tracer.spans}),
        "roots": len(roots),
        "dropped": tracer.dropped,
        "elapsed_simulated": result.elapsed,
        "spans_by_name": dict(sorted(by_name.items())),
        "attribution": {name: cost for name, cost
                        in sorted(tracer.attribution().items())},
        "slowest_roots": [{"trace_id": span.trace_id,
                           "name": span.qualified,
                           "start": span.start,
                           "duration": span.duration}
                          for span in slowest],
    }


def main(argv=None) -> int:
    args = parse_args(argv)
    stack = build_stack(args.system, Scale(args.scale), metrics=True,
                        tracing=True, trace_sample_rate=args.sample_rate,
                        trace_seed=args.seed)
    job = FioJob(rw=args.rw, block_size=4 * KIB,
                 size=int(args.size_mib * MIB), fsync=args.fsync)
    result = run_fio(stack.env, stack.libc, job, "/bench.dat",
                     settle=stack.settle)
    tracer = stack.tracer

    if args.export:
        tracer.to_chrome_json(args.export)
        print(f"wrote {args.export} ({len(tracer.spans)} spans, "
              f"{len(tracer.events)} flat events)")
        return 0
    if args.attribution and args.json:
        # The machine form of the attribution table: the same
        # repro.attribution/1 schema the capacity explorer captures per
        # grid cell, so diff tooling consumes either source unchanged.
        payload = attribution_payload(
            {segment: to_ps(cost)
             for segment, cost in tracer.attribution().items()},
            source=f"trace_report:{args.system}:{args.rw}",
            spans=len(tracer.spans),
            dropped=tracer.dropped)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.json:
        print(json.dumps(json_summary(args, tracer, result), indent=2,
                         sort_keys=True))
        return 0
    if args.trace is not None:
        spans = tracer.spans_for(args.trace)
        if not spans:
            print(f"no spans recorded for trace {args.trace}",
                  file=sys.stderr)
            return 2
        print_tree(spans)
        return 0
    if args.list_roots:
        for span in tracer.roots():
            print(root_line(span))
        return 0
    if args.slowest is not None:
        roots = sorted(tracer.roots(),
                       key=lambda s: (-s.duration, s.trace_id))
        for span in roots[:args.slowest]:
            print(root_line(span))
        return 0
    if args.attribution:
        print(attribution_table(tracer))
        return 0

    # Default: the full human summary.
    roots = tracer.roots()
    traces = {span.trace_id for span in tracer.spans}
    print(f"system: {args.system}  job: {job.rw} {job.block_size}B "
          f"fsync={job.fsync}  sample_rate={args.sample_rate}")
    print(f"elapsed (simulated): {fmt_time(result.elapsed)}  "
          f"spans: {len(tracer.spans)} in {len(traces)} traces "
          f"({len(roots)} roots, {tracer.dropped} dropped)")
    print()
    by_name = {}
    for span in tracer.spans:
        by_name[span.qualified] = by_name.get(span.qualified, 0) + 1
    width = max(len(name) for name in by_name) if by_name else 0
    print("spans by name:")
    for name, count in sorted(by_name.items()):
        print(f"  {name.ljust(width)}  n={count}")
    print()
    slowest = sorted(roots, key=lambda s: (-s.duration, s.trace_id))[:5]
    if slowest:
        print("slowest roots (drill in with --trace ID):")
        for span in slowest:
            print(f"  {root_line(span)}")
        print()
    print(attribution_table(tracer))
    exemplars = exemplar_lines(stack)
    if exemplars:
        print()
        print("tail exemplars:")
        for line in exemplars:
            print(line)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)  # downstream closed the pipe (e.g. | head)
    except Exception as exc:  # noqa: BLE001 — CLI boundary
        print(f"trace_report failed: {exc}", file=sys.stderr)
        sys.exit(2)
